"""Collaborative proactive+reactive auto-scaling controller.

The paper's auto-scaler provisions purely from the forecast (Section
IV-C), so a bad forecast becomes a bad scaling decision.  OptScaler
(PAPERS.md) shows the robust pattern: keep the *proactive* forecast as
the primary signal but correct it with a *reactive* feedback term
computed from the observed forecast error, and wrap the whole thing in
explicit safety rails so no combination of model failure and disturbance
can produce a runaway decision.  :class:`HybridController` implements
that closed loop over any :class:`~repro.baselines.base.Predictor`
(typically a :class:`~repro.serving.guard.GuardedPredictor`):

* **proactive + corrector** — the decision starts from the forecast and
  adds a PID-style term on the observed forecast error (proportional on
  the last error, integral with anti-windup, optional derivative) plus a
  rolling-quantile *headroom* (an upper quantile of recent positive
  errors, i.e. how much the forecaster has recently underpredicted);
* **safety rails** — min/max VM bounds, per-step scale-up/scale-down
  rate limits, and a scale-down cooldown after any scale-up; every rail
  that clips a decision is recorded on it and counted;
* **burst mode** — a latched high-provisioning state entered after
  ``burst_streak`` consecutive underprovisioned intervals or when an
  attached :class:`~repro.obs.monitor.drift.DriftDetector` fires; while
  latched the controller provisions at least ``forecast +
  Q_{burst_quantile}(positive errors)``, and the latch clears only after
  ``burst_clear`` consecutive adequately-provisioned intervals (a
  still-latched detector is reset at that point, recalibrating it on the
  now-healthy stream);
* **tiered degradation** — a non-finite/unavailable forecast or an open
  circuit breaker routes the decision to pure-reactive provisioning
  (max of the last ``reactive_window`` observed arrivals times a
  headroom factor); a dead reactive signal (no finite observation in the
  window) falls back to holding the last decision.  Every decision
  carries a ``decided_by`` provenance tag, and path changes emit
  ``autoscale.controller.*`` counters and events.

**Zero-overhead guarantee**: with all corrector gains zero, headroom
disabled, rails disabled, and no burst trigger, the emitted schedule is
*bit-for-bit* the predictive policy's ``ceil(max(forecast, 0))`` — the
controller only ever adds arithmetic when a non-zero correction exists
(regression-tested in ``tests/test_autoscale_controller.py``).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import Predictor
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger

__all__ = [
    "DECIDED_BY",
    "ControllerConfig",
    "Decision",
    "HybridController",
    "HybridPolicy",
]

logger = get_logger("autoscale.controller")

#: Decision provenance tags, healthiest first: pure forecast, corrected
#: forecast, burst override, reactive takeover, hold-last-decision.
DECIDED_BY = ("proactive", "hybrid", "burst", "reactive", "hold")


@dataclass(frozen=True)
class ControllerConfig:
    """Tuning knobs for :class:`HybridController`.

    Corrector
    ---------
    kp / ki / kd:
        PID gains on the observed forecast error (``actual - forecast``).
        All-zero gains plus ``headroom_quantile=None`` make the proactive
        path a bitwise pass-through of the forecast.
    integral_limit:
        Anti-windup clamp: the raw error integral is held in
        ``[-integral_limit, +integral_limit]`` so a long outage cannot
        wind up an absurd correction.
    headroom_quantile:
        Provision this quantile of recent *positive* errors on top of the
        forecast (how much the model has recently underpredicted);
        ``None`` disables the headroom term.
    error_window:
        Rolling window of scored forecast errors feeding the integral
        decay horizon, the headroom quantile, and the burst target.

    Reactive tier
    -------------
    reactive_window / reactive_headroom:
        Degraded-mode provisioning is ``reactive_headroom x max`` of the
        finite observations among the last ``reactive_window`` arrivals
        (the generalized :class:`~repro.autoscale.policy.ReactivePolicy`
        rule).  No finite observation in the window means the reactive
        signal is dead and the controller holds its last decision.

    Safety rails
    ------------
    min_vms / max_vms:
        Hard bounds on every decision (``max_vms=None`` = unbounded).
    max_step_up / max_step_down:
        Per-step rate limits relative to the previous decision
        (``None`` = unlimited).
    scale_down_cooldown:
        After any scale-up, scale-downs are held for this many decisions
        (0 disables).

    Burst mode
    ----------
    burst_streak:
        Consecutive underprovisioned intervals that latch burst mode
        (``None`` disables the underprovision trigger; a drift detector
        can still latch it).
    burst_clear:
        Consecutive adequately-provisioned intervals that clear the latch.
    burst_quantile:
        While latched, provision at least ``reference +
        Q_{burst_quantile}(positive errors)``.
    """

    kp: float = 0.5
    ki: float = 0.1
    kd: float = 0.0
    integral_limit: float = 100.0
    headroom_quantile: float | None = 0.75
    error_window: int = 64
    reactive_window: int = 3
    reactive_headroom: float = 1.0
    min_vms: int = 0
    max_vms: int | None = None
    max_step_up: int | None = None
    max_step_down: int | None = None
    scale_down_cooldown: int = 0
    burst_streak: int | None = 3
    burst_clear: int = 6
    burst_quantile: float = 0.95

    def __post_init__(self):
        if self.integral_limit < 0:
            raise ValueError("integral_limit must be non-negative")
        if self.headroom_quantile is not None and not 0.0 <= self.headroom_quantile <= 1.0:
            raise ValueError("headroom_quantile must be in [0, 1] or None")
        if self.error_window < 2:
            raise ValueError("error_window must be >= 2")
        if self.reactive_window < 1:
            raise ValueError("reactive_window must be >= 1")
        if self.reactive_headroom <= 0:
            raise ValueError("reactive_headroom must be positive")
        if self.min_vms < 0:
            raise ValueError("min_vms must be non-negative")
        if self.max_vms is not None and self.max_vms < self.min_vms:
            raise ValueError("max_vms must be >= min_vms")
        if self.max_step_up is not None and self.max_step_up < 0:
            raise ValueError("max_step_up must be non-negative")
        if self.max_step_down is not None and self.max_step_down < 0:
            raise ValueError("max_step_down must be non-negative")
        if self.scale_down_cooldown < 0:
            raise ValueError("scale_down_cooldown must be non-negative")
        if self.burst_streak is not None and self.burst_streak < 1:
            raise ValueError("burst_streak must be >= 1 or None")
        if self.burst_clear < 1:
            raise ValueError("burst_clear must be >= 1")
        if not 0.0 <= self.burst_quantile <= 1.0:
            raise ValueError("burst_quantile must be in [0, 1]")

    @classmethod
    def passthrough(cls) -> "ControllerConfig":
        """Corrector off, rails off, burst off: bit-for-bit predictive."""
        return cls(
            kp=0.0, ki=0.0, kd=0.0, headroom_quantile=None,
            min_vms=0, max_vms=None, max_step_up=None, max_step_down=None,
            scale_down_cooldown=0, burst_streak=None,
        )

    @property
    def corrector_enabled(self) -> bool:
        """True when any corrector term can produce a non-zero correction."""
        return (
            self.kp != 0.0
            or self.ki != 0.0
            or self.kd != 0.0
            or self.headroom_quantile is not None
        )


@dataclass(frozen=True)
class Decision:
    """One provisioning decision with full provenance.

    ``vms`` is the final (post-rail) whole-VM count; ``target`` the
    continuous pre-rail target; ``rails`` names every rail that clipped
    it, in application order.
    """

    vms: int
    decided_by: str
    target: float
    rails: tuple[str, ...] = ()
    burst: bool = False
    forecast: float = math.nan
    correction: float = 0.0


class HybridController:
    """Stateful closed-loop controller: one :meth:`step` per interval.

    Parameters
    ----------
    config:
        A :class:`ControllerConfig`; defaults are production-leaning
        (corrector on, burst on, rails unbounded).
    drift_detector:
        Anything matching the
        :class:`~repro.obs.monitor.drift.DriftDetector` protocol.  Its
        scored errors come from this controller (absolute percentage
        errors, like :class:`~repro.core.adaptive.AdaptiveLoadDynamics`
        feeds it), and its latched ``drifted`` flag triggers burst mode
        — share one instance with ``AdaptiveLoadDynamics`` (see its
        ``drift_latch`` property) and a fired detector both refits the
        model *and* provisions defensively while the refit catches up.
    breaker:
        Anything with a string ``state`` attribute (duck-typed so the
        autoscale layer needs no serving import); ``"open"`` routes
        decisions to the reactive tier.
        :class:`HybridPolicy` wires a guarded predictor's breaker in
        automatically.
    """

    #: Breaker state that sheds the proactive path (matches
    #: :data:`repro.serving.breaker.OPEN` without importing serving).
    BREAKER_OPEN = "open"

    def __init__(
        self,
        config: ControllerConfig | None = None,
        drift_detector=None,
        breaker=None,
    ):
        self.config = config if config is not None else ControllerConfig()
        self.drift_detector = drift_detector
        self.breaker = breaker
        #: Every decision made since the last :meth:`reset`, in order.
        self.decisions: list[Decision] = []
        #: Decision counts per provenance tag.
        self.decided_by: dict[str, int] = {}
        #: Clip counts per rail name.
        self.rail_hits: dict[str, int] = {}
        #: Completed + in-progress burst episodes.
        self.burst_episodes = 0
        self.burst = False
        self.burst_reason: str | None = None

        # Hot-path metric handles resolved once, not per decision.
        self._c_decisions = _metrics.counter("autoscale.controller.decisions")
        self._c_by = {
            tag: _metrics.counter(f"autoscale.controller.decided_by.{tag}")
            for tag in DECIDED_BY
        }
        self._c_burst_in = _metrics.counter("autoscale.controller.burst.entered")
        self._c_burst_out = _metrics.counter("autoscale.controller.burst.exited")

        self._reset_state()

    def _reset_state(self) -> None:
        cfg = self.config
        self._errors: deque[float] = deque(maxlen=cfg.error_window)
        self._integral = 0.0
        self._prev_error: float | None = None
        self._derivative = 0.0
        self._last_forecast: float | None = None
        self._last_vms: int | None = None
        self._under_streak = 0
        self._clean_streak = 0
        self._cooldown = 0
        self._last_tag: str | None = None

    def reset(self) -> None:
        """Restart the control loop (fresh series); telemetry keeps counting."""
        self.decisions.clear()
        self.decided_by.clear()
        self.rail_hits.clear()
        self.burst = False
        self.burst_reason = None
        self.burst_episodes = 0
        self._reset_state()

    # ------------------------------------------------------------------
    # scoring: consume the newly revealed arrival
    # ------------------------------------------------------------------
    def _score(self, actual: float) -> None:
        if not math.isfinite(actual):
            # Unobserved interval: corrector and burst streaks freeze —
            # a sensor outage is not evidence either way.
            return
        if self._last_forecast is not None and math.isfinite(self._last_forecast):
            e = actual - self._last_forecast
            self._errors.append(e)
            cfg = self.config
            self._integral = min(
                max(self._integral + e, -cfg.integral_limit), cfg.integral_limit
            )
            self._derivative = e - (self._prev_error if self._prev_error is not None else e)
            self._prev_error = e
            if self.drift_detector is not None:
                ape = 100.0 * abs(e) / max(abs(actual), 1e-9)
                self.drift_detector.update(ape)
        if self._last_vms is not None:
            if actual > self._last_vms:
                self._under_streak += 1
                self._clean_streak = 0
            else:
                self._clean_streak += 1
                self._under_streak = 0

    # ------------------------------------------------------------------
    # burst latch
    # ------------------------------------------------------------------
    def _update_burst(self) -> None:
        cfg = self.config
        drift_latched = self.drift_detector is not None and bool(
            getattr(self.drift_detector, "drifted", False)
        )
        if not self.burst:
            reason = None
            if cfg.burst_streak is not None and self._under_streak >= cfg.burst_streak:
                reason = "underprovision_streak"
            elif drift_latched:
                reason = "drift_latch"
            if reason is not None:
                self.burst = True
                self.burst_reason = reason
                self.burst_episodes += 1
                self._c_burst_in.inc()
                logger.warning("burst mode latched (%s)", reason)
                if _events.enabled():
                    _events.emit(
                        "autoscale.controller.burst", state="entered", reason=reason,
                    )
        elif self._clean_streak >= cfg.burst_clear:
            if drift_latched:
                # Provisioning has been adequate for a full clear window:
                # whatever regime the detector latched on is now handled
                # (or refitted away upstream) — recalibrate it so the
                # next drift is detectable, and release the latch.
                self.drift_detector.reset()
            self.burst = False
            self._c_burst_out.inc()
            logger.info("burst mode cleared (%s)", self.burst_reason)
            if _events.enabled():
                _events.emit(
                    "autoscale.controller.burst",
                    state="exited", reason=self.burst_reason,
                )
            self.burst_reason = None

    # ------------------------------------------------------------------
    def _positive_error_quantile(self, q: float) -> float:
        pos = [e for e in self._errors if e > 0.0]
        if not pos:
            return 0.0
        return float(np.quantile(np.asarray(pos, dtype=np.float64), q))

    def _reactive_target(self, history: np.ndarray) -> float | None:
        """Generalized reactive rule, or ``None`` when the signal is dead."""
        cfg = self.config
        tail = history[-cfg.reactive_window :] if history.size else history
        finite = tail[np.isfinite(tail)]
        if finite.size == 0:
            return None
        peak = float(finite.max())
        if cfg.reactive_headroom != 1.0:
            peak *= cfg.reactive_headroom
        return peak

    # ------------------------------------------------------------------
    def step(self, forecast: float, history: np.ndarray) -> Decision:
        """Decide the VM count for the next interval.

        ``forecast`` is the proactive prediction for the interval being
        provisioned (non-finite = unavailable); ``history`` the observed
        arrivals so far — ``history[-1]`` is the newly revealed actual
        that scores the previous forecast and decision.  Call exactly
        once per interval, walking forward.
        """
        cfg = self.config
        h = np.asarray(history, dtype=np.float64).ravel()
        if h.size:
            self._score(float(h[-1]))
        self._update_burst()

        forecast = float(forecast)
        proactive_ok = math.isfinite(forecast) and not (
            self.breaker is not None
            and getattr(self.breaker, "state", None) == self.BREAKER_OPEN
        )
        reactive = self._reactive_target(h)

        correction = 0.0
        if proactive_ok:
            if cfg.corrector_enabled and self._prev_error is not None:
                correction = (
                    cfg.kp * self._prev_error
                    + cfg.ki * self._integral
                    + cfg.kd * self._derivative
                )
                if cfg.headroom_quantile is not None:
                    correction += self._positive_error_quantile(cfg.headroom_quantile)
            if correction != 0.0:
                target = forecast + correction
                decided_by = "hybrid"
            else:
                # Bitwise pass-through: no arithmetic touches the forecast.
                target = forecast
                decided_by = "proactive"
        elif reactive is not None:
            target = reactive
            decided_by = "reactive"
        elif self._last_vms is not None:
            target = float(self._last_vms)
            decided_by = "hold"
        else:
            target = float(cfg.min_vms)
            decided_by = "hold"

        if self.burst:
            reference = (
                forecast if proactive_ok
                else reactive if reactive is not None
                else target
            )
            burst_target = reference + self._positive_error_quantile(cfg.burst_quantile)
            if burst_target > target:
                target = burst_target
                decided_by = "burst"

        vms, rails = self._apply_rails(target)
        decision = Decision(
            vms=vms, decided_by=decided_by, target=target, rails=rails,
            burst=self.burst, forecast=forecast, correction=correction,
        )
        self._record(decision)
        self._last_forecast = forecast if proactive_ok else None
        self._last_vms = vms
        return decision

    # ------------------------------------------------------------------
    def _apply_rails(self, target: float) -> tuple[int, tuple[str, ...]]:
        """Rate limits and cooldown relative to the previous decision,
        then hard bounds.

        The previous decision always sits inside ``[min_vms, max_vms]``,
        so clamping after the relative rails can only move the value
        *toward* the previous one — both the bounds invariant and the
        rate-limit invariant hold on every decision simultaneously.
        """
        cfg = self.config
        vms = int(math.ceil(max(target, 0.0)))
        rails: list[str] = []
        prev = self._last_vms
        if prev is not None:
            if cfg.max_step_up is not None and vms > prev + cfg.max_step_up:
                vms = prev + cfg.max_step_up
                rails.append("rate_up")
            if vms < prev:
                if self._cooldown > 0:
                    vms = prev
                    rails.append("cooldown")
                elif cfg.max_step_down is not None and vms < prev - cfg.max_step_down:
                    vms = prev - cfg.max_step_down
                    rails.append("rate_down")
        if cfg.max_vms is not None and vms > cfg.max_vms:
            vms = cfg.max_vms
            rails.append("max_vms")
        if vms < cfg.min_vms:
            vms = cfg.min_vms
            rails.append("min_vms")

        if self._cooldown > 0:
            self._cooldown -= 1
        if prev is not None and vms > prev and cfg.scale_down_cooldown > 0:
            self._cooldown = cfg.scale_down_cooldown
        return vms, tuple(rails)

    def _record(self, decision: Decision) -> None:
        self.decisions.append(decision)
        tag = decision.decided_by
        self.decided_by[tag] = self.decided_by.get(tag, 0) + 1
        self._c_decisions.inc()
        self._c_by[tag].inc()
        for rail in decision.rails:
            self.rail_hits[rail] = self.rail_hits.get(rail, 0) + 1
            _metrics.counter(f"autoscale.controller.rail.{rail}").inc()
        if tag != self._last_tag:
            if self._last_tag is not None and _events.enabled():
                _events.emit(
                    "autoscale.controller.path",
                    from_path=self._last_tag, to_path=tag,
                    n_decisions=len(self.decisions),
                )
            self._last_tag = tag

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable mutable control-loop state.

        Captures the full decision log (with provenance), the corrector
        terms, the burst latch, the rail/cooldown bookkeeping, and — when
        the attached drift detector supports it — the detector's state.
        Loading the same detector state twice (here and via a
        :class:`~repro.obs.monitor.monitor.ForecastMonitor` sharing the
        instance) is idempotent, so shared detectors stay consistent.
        """
        out: dict = {
            "decisions": [
                [d.vms, d.decided_by, d.target, list(d.rails), d.burst,
                 d.forecast, d.correction]
                for d in self.decisions
            ],
            "decided_by": dict(self.decided_by),
            "rail_hits": dict(self.rail_hits),
            "burst": self.burst,
            "burst_reason": self.burst_reason,
            "burst_episodes": self.burst_episodes,
            "errors": list(self._errors),
            "integral": self._integral,
            "prev_error": self._prev_error,
            "derivative": self._derivative,
            "last_forecast": self._last_forecast,
            "last_vms": self._last_vms,
            "under_streak": self._under_streak,
            "clean_streak": self._clean_streak,
            "cooldown": self._cooldown,
            "last_tag": self._last_tag,
        }
        if self.drift_detector is not None and hasattr(
            self.drift_detector, "state_dict"
        ):
            out["drift_detector"] = self.drift_detector.state_dict()
        return out

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto a same-config instance."""
        cfg = self.config
        errors = [float(e) for e in state["errors"]]
        if len(errors) > cfg.error_window:
            raise ValueError(
                f"{len(errors)} saved errors exceed error_window "
                f"{cfg.error_window}"
            )
        self.decisions = [
            Decision(
                vms=int(vms), decided_by=str(tag), target=float(target),
                rails=tuple(str(r) for r in rails), burst=bool(burst),
                forecast=float(forecast), correction=float(correction),
            )
            for vms, tag, target, rails, burst, forecast, correction
            in state["decisions"]
        ]
        self.decided_by = {str(k): int(v) for k, v in state["decided_by"].items()}
        self.rail_hits = {str(k): int(v) for k, v in state["rail_hits"].items()}
        self.burst = bool(state["burst"])
        reason = state["burst_reason"]
        self.burst_reason = str(reason) if reason is not None else None
        self.burst_episodes = int(state["burst_episodes"])
        self._errors = deque(errors, maxlen=cfg.error_window)
        self._integral = float(state["integral"])
        prev = state["prev_error"]
        self._prev_error = float(prev) if prev is not None else None
        self._derivative = float(state["derivative"])
        last_f = state["last_forecast"]
        self._last_forecast = float(last_f) if last_f is not None else None
        last_v = state["last_vms"]
        self._last_vms = int(last_v) if last_v is not None else None
        self._under_streak = int(state["under_streak"])
        self._clean_streak = int(state["clean_streak"])
        self._cooldown = int(state["cooldown"])
        tag = state["last_tag"]
        self._last_tag = str(tag) if tag is not None else None
        if "drift_detector" in state and self.drift_detector is not None and hasattr(
            self.drift_detector, "load_state_dict"
        ):
            self.drift_detector.load_state_dict(state["drift_detector"])

    # ------------------------------------------------------------------
    @property
    def integral(self) -> float:
        """Current (anti-windup-clamped) error integral."""
        return self._integral

    def snapshot(self) -> dict:
        """Plain-dict controller state for reports and artifacts."""
        return {
            "n_decisions": len(self.decisions),
            "decided_by": dict(self.decided_by),
            "rail_hits": dict(self.rail_hits),
            "burst": self.burst,
            "burst_reason": self.burst_reason,
            "burst_episodes": self.burst_episodes,
            "integral": self._integral,
            "n_errors": len(self._errors),
        }


class HybridPolicy:
    """Offline policy wrapper: walk a predictor + controller over a trace.

    Drop-in beside :class:`~repro.autoscale.policy.PredictivePolicy` for
    the scenario harness and Fig. 10-style comparisons: ``schedule``
    walks the predictor forward over the *observed* stream (which may
    contain NaN outage windows — the controller degrades, it never
    raises) and returns the decided whole-VM schedule.  A fresh control
    loop runs per call, so schedules are deterministic and independent.

    A :class:`~repro.serving.guard.GuardedPredictor` primary wires its
    circuit breaker into the controller automatically (duck-typed via
    the predictor's ``breaker`` attribute), so an open breaker visibly
    shifts ``decided_by`` to the reactive tier.
    """

    def __init__(
        self,
        predictor: Predictor,
        controller: HybridController | None = None,
        config: ControllerConfig | None = None,
        refit_every: int = 1,
    ):
        if controller is not None and config is not None:
            raise ValueError("pass either controller or config, not both")
        self.predictor = predictor
        self.controller = (
            controller if controller is not None else HybridController(config)
        )
        if self.controller.breaker is None:
            self.controller.breaker = getattr(predictor, "breaker", None)
        self.refit_every = int(refit_every)
        self.name = f"hybrid[{predictor.name}]"

    def schedule(self, arrivals: np.ndarray, start: int) -> np.ndarray:
        """Decide VM counts for ``arrivals[start:]``, walking forward."""
        a = np.asarray(arrivals, dtype=np.float64).ravel()
        n = a.size
        if not 0 < start <= n:
            raise ValueError("start must be inside the arrivals series")
        if self.refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        self.controller.reset()
        out = np.empty(n - start)
        for j, i in enumerate(range(start, n)):
            history = a[:i]
            forecast = _guarded_forecast(
                self.predictor, history, refit=(j % self.refit_every == 0)
            )
            out[j] = self.controller.step(forecast, history).vms
        return out


def _guarded_forecast(predictor: Predictor, history: np.ndarray, refit: bool) -> float:
    """One walk-forward forecast that degrades instead of raising.

    A failing fit keeps the stale model; a failing/non-finite predict
    returns NaN, which the controller treats as "forecast unavailable"
    and routes to the reactive tier.  Simulated process crashes
    (:class:`~repro.resilience.faults.SimulatedCrash`) still propagate.
    """
    from repro.resilience import faults as _faults

    if refit:
        try:
            predictor.fit(history)
        except _faults.SimulatedCrash:
            raise
        except Exception as exc:
            _metrics.counter("autoscale.controller.fit_error").inc()
            logger.warning("proactive fit failed (stale model serves): %s", exc)
    try:
        return float(predictor.predict_next(history))
    except _faults.SimulatedCrash:
        raise
    except Exception as exc:
        _metrics.counter("autoscale.controller.forecast_error").inc()
        logger.warning("proactive forecast failed (reactive tier serves): %s", exc)
        return math.nan
