"""Cloud auto-scaling substrate (replaces the paper's Google Cloud testbed).

Section IV-C of the paper runs a predictive auto-scaling policy on real
n1-standard-1 VMs executing CloudSuite's In-Memory Analytics benchmark.
Offline, we reproduce the *mechanics the measurement depends on*:

* jobs arrive at the start of each interval (the paper's simplifying
  assumption), one VM per job;
* VMs provisioned ahead of the interval are warm; under-provisioned jobs
  wait out a VM startup delay (the cause of turnaround inflation);
* over-provisioned VMs idle for the interval (the cause of wasted cost).

Components:

* :mod:`repro.autoscale.cloudsim` — the interval-driven simulator;
* :mod:`repro.autoscale.policy` — predictive + reactive + oracle policies;
* :mod:`repro.autoscale.controller` — the collaborative proactive +
  reactive :class:`HybridController` with safety rails and burst mode;
* :mod:`repro.autoscale.scenarios` — the adversarial scenario harness;
* :mod:`repro.autoscale.metrics` — turnaround / provisioning summaries.
"""

from repro.autoscale.cloudsim import CloudSimulator, SimulationResult, VMSpec
from repro.autoscale.controller import (
    ControllerConfig,
    Decision,
    HybridController,
    HybridPolicy,
)
from repro.autoscale.cost import CostReport, PricingModel, price_run
from repro.autoscale.metrics import AutoscaleSummary, summarize
from repro.autoscale.policy import (
    OraclePolicy,
    PredictivePolicy,
    ReactivePolicy,
    provisioning_schedule,
)

# Scenarios import last: the harness builds on every sibling above (and
# lazily reaches into repro.serving, which itself imports this package).
from repro.autoscale.scenarios import (  # noqa: E402
    Scenario,
    default_scenarios,
    run_matrix,
)

__all__ = [
    "VMSpec",
    "CloudSimulator",
    "SimulationResult",
    "PredictivePolicy",
    "ReactivePolicy",
    "OraclePolicy",
    "provisioning_schedule",
    "ControllerConfig",
    "Decision",
    "HybridController",
    "HybridPolicy",
    "Scenario",
    "default_scenarios",
    "run_matrix",
    "AutoscaleSummary",
    "summarize",
    "PricingModel",
    "CostReport",
    "price_run",
]
