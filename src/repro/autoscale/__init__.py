"""Cloud auto-scaling substrate (replaces the paper's Google Cloud testbed).

Section IV-C of the paper runs a predictive auto-scaling policy on real
n1-standard-1 VMs executing CloudSuite's In-Memory Analytics benchmark.
Offline, we reproduce the *mechanics the measurement depends on*:

* jobs arrive at the start of each interval (the paper's simplifying
  assumption), one VM per job;
* VMs provisioned ahead of the interval are warm; under-provisioned jobs
  wait out a VM startup delay (the cause of turnaround inflation);
* over-provisioned VMs idle for the interval (the cause of wasted cost).

Components:

* :mod:`repro.autoscale.cloudsim` — the interval-driven simulator;
* :mod:`repro.autoscale.policy` — predictive + reactive + oracle policies;
* :mod:`repro.autoscale.metrics` — turnaround / provisioning summaries.
"""

from repro.autoscale.cloudsim import CloudSimulator, SimulationResult, VMSpec
from repro.autoscale.cost import CostReport, PricingModel, price_run
from repro.autoscale.metrics import AutoscaleSummary, summarize
from repro.autoscale.policy import (
    OraclePolicy,
    PredictivePolicy,
    ReactivePolicy,
    provisioning_schedule,
)

__all__ = [
    "VMSpec",
    "CloudSimulator",
    "SimulationResult",
    "PredictivePolicy",
    "ReactivePolicy",
    "OraclePolicy",
    "provisioning_schedule",
    "AutoscaleSummary",
    "summarize",
    "PricingModel",
    "CostReport",
    "price_run",
]
