"""Cloud cost accounting for auto-scaling runs.

Section II-A frames the provisioning trade-off in money and SLA terms:
over-provisioning "results in some VMs running idle, wasting money";
under-provisioning risks "violating performance goals".  This module
prices a :class:`~repro.autoscale.cloudsim.SimulationResult` so policies
can be compared on a single dollar axis:

* VM time at an hourly on-demand rate (default: n1-standard-1's
  historical $0.0475/h — the paper's instance type);
* optional SLA penalties for intervals whose makespan exceeds a
  deadline (the performance-goal violation cost).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autoscale.cloudsim import SimulationResult

__all__ = ["PricingModel", "CostReport", "price_run"]


@dataclass(frozen=True)
class PricingModel:
    """Billing and SLA parameters.

    ``billing_increment_seconds`` models per-second vs per-minute billing
    granularity (GCE bills per second with a 60 s minimum).
    """

    vm_hourly_rate: float = 0.0475
    billing_increment_seconds: float = 60.0
    sla_deadline_seconds: float | None = None
    sla_penalty_per_violation: float = 0.0

    def __post_init__(self):
        if self.vm_hourly_rate < 0:
            raise ValueError("vm_hourly_rate must be non-negative")
        if self.billing_increment_seconds <= 0:
            raise ValueError("billing_increment_seconds must be positive")
        if self.sla_penalty_per_violation < 0:
            raise ValueError("sla_penalty_per_violation must be non-negative")


@dataclass(frozen=True)
class CostReport:
    """Priced outcome of one auto-scaling run."""

    policy: str
    vm_cost: float
    sla_violations: int
    sla_cost: float

    @property
    def total_cost(self) -> float:
        return self.vm_cost + self.sla_cost

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "vm_cost": self.vm_cost,
            "sla_violations": self.sla_violations,
            "sla_cost": self.sla_cost,
            "total_cost": self.total_cost,
        }


def price_run(
    policy: str, result: SimulationResult, pricing: PricingModel | None = None
) -> CostReport:
    """Price a simulation run under a :class:`PricingModel`."""
    p = pricing if pricing is not None else PricingModel()
    inc = p.billing_increment_seconds
    billed_seconds = np.ceil(result.vm_seconds / inc) * inc
    vm_cost = float(billed_seconds / 3600.0 * p.vm_hourly_rate)

    violations = 0
    if p.sla_deadline_seconds is not None:
        busy = result.arrivals > 0
        violations = int(
            np.sum(result.makespan_seconds[busy] > p.sla_deadline_seconds)
        )
    sla_cost = violations * p.sla_penalty_per_violation
    return CostReport(
        policy=policy, vm_cost=vm_cost, sla_violations=violations, sla_cost=sla_cost
    )
