"""Adversarial autoscaling scenarios: predictive vs reactive vs hybrid.

The paper's Section IV-C case study replays a well-behaved trace, which
is exactly when a pure forecaster looks best.  Gontarska et al.
(PAPERS.md) argue autoscaling evaluation must include the disturbances
production traffic actually throws — demand the history never saw,
observations that go missing, models that silently degrade.  This
module packages those as deterministic :class:`Scenario` fixtures and a
:func:`run_matrix` harness comparing the three policy families on each:

* ``steady`` — the clean diurnal baseline (the paper's setting); the
  hybrid controller must stay near the predictive policy's cost here,
  or its robustness is just bought with over-provisioning;
* ``flash_crowd`` — three seeded demand spikes
  (:func:`repro.traces.inject_flash_crowd`) no forecast anticipates;
* ``regime_shift`` — a permanent level shift
  (:func:`repro.traces.inject_regime_shift`) mid-serve;
* ``corruption`` — a real demand surge whose *observations* black out
  to NaN shortly after onset: policies act on the corrupted stream but
  are judged against the true arrivals;
* ``nan_flash`` — a flash crowd while ``nan@serve.predict`` faults kill
  every primary forecast (the circuit breaker opens and the hybrid
  controller's provenance visibly shifts to the reactive tier);
* ``drift_fault`` — ``drift@serve.predict`` scales every forecast to
  40% of its value mid-run: a silent model degradation only the error
  feedback (PID correction, drift-latched burst) can catch;
* ``seasonality_break`` — the diurnal period halves mid-serve (a
  deploy changes the batch cadence): every period-48 seasonal forecast
  is suddenly half a cycle out of phase, the worst case for a
  forecaster whose seasonality assumption was *correct* until now.

Every scenario is deterministic in its seed; fault runs install a fresh
:class:`~repro.resilience.faults.FaultInjector` per policy so invocation
counts never leak between runs.  ``benchmarks/bench_autoscale_chaos.py``
turns the matrix into the committed ``BENCH_autoscale.json`` artifact,
and ``repro autoscale`` prints it from the CLI.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.autoscale.cloudsim import CloudSimulator, VMSpec
from repro.autoscale.controller import (
    ControllerConfig,
    HybridController,
    HybridPolicy,
)
from repro.autoscale.cost import PricingModel, price_run
from repro.autoscale.metrics import summarize
from repro.autoscale.policy import PredictivePolicy, ReactivePolicy
from repro.resilience import faults as _faults
from repro.traces.synthetic import inject_flash_crowd, inject_regime_shift

__all__ = [
    "Scenario",
    "SCENARIO_NAMES",
    "POLICY_NAMES",
    "default_controller_config",
    "default_scenarios",
    "make_policy",
    "run_matrix",
]

#: Scenario names in canonical order (matches :func:`default_scenarios`).
SCENARIO_NAMES = (
    "steady",
    "flash_crowd",
    "regime_shift",
    "corruption",
    "nan_flash",
    "drift_fault",
    "seasonality_break",
)

#: Policy families the harness compares.
POLICY_NAMES = ("predictive", "reactive", "hybrid")


@dataclass(frozen=True)
class Scenario:
    """One adversarial fixture: what happened vs what the policies saw.

    ``observed`` is the stream policies act on (may contain NaN
    blackouts); ``actual`` is the finite ground truth the simulator
    replays their schedules against.  ``faults`` is a
    :class:`~repro.resilience.faults.FaultInjector` spec installed for
    the duration of each policy's scheduling pass ("" = none).
    """

    name: str
    description: str
    actual: np.ndarray
    observed: np.ndarray
    start: int
    faults: str = ""


def _base_trace(days: int, period: int, level: float, seed: int) -> np.ndarray:
    """Clean diurnal Poisson arrivals: ``days`` x ``period`` intervals."""
    rng = np.random.default_rng(seed)
    n = days * period
    t = np.arange(n, dtype=np.float64)
    phase = (t % period) / period
    lam = level * (0.7 + 0.6 * 0.5 * (1.0 + np.cos(2.0 * np.pi * (phase - 0.6))))
    return rng.poisson(lam).astype(np.float64)


def default_scenarios(
    *,
    days: int = 14,
    serve_days: int = 7,
    period: int = 48,
    level: float = 120.0,
    seed: int = 7,
) -> list[Scenario]:
    """Build the canonical scenario suite, deterministic in ``seed``.

    ``period`` intervals per day (48 = 30-minute intervals); the last
    ``serve_days`` days are served, the rest is warm-up history.
    """
    if days < 3 or not 0 < serve_days < days:
        raise ValueError("need days >= 3 and 0 < serve_days < days")
    base = _base_trace(days, period, level, seed)
    n = base.size
    start = (days - serve_days) * period
    serve_len = n - start

    flash = base
    for k, frac in enumerate((0.25, 0.55, 0.8)):
        flash = inject_flash_crowd(
            flash, start + int(frac * serve_len),
            magnitude=3.5, width=10, ramp=2, jitter=0.05, seed=seed + k,
        )

    shift = inject_regime_shift(
        base, start + serve_len // 2, factor=2.0, ramp=period // 4,
    )

    surge_at = start + serve_len // 2
    corrupt_actual = inject_flash_crowd(
        base, surge_at, magnitude=3.0, width=40, ramp=3,
    )
    corrupt_observed = corrupt_actual.copy()
    corrupt_observed[surge_at + 5 : surge_at + 35] = np.nan

    # Fire the forecast degradation after the drift detector's warmup
    # window so the run exercises detection, not calibration.
    drift_at = 60

    # Seasonality break: from mid-serve onward the diurnal cycle runs at
    # half the period (same mean level), so a period-length seasonal
    # forecast is alternately half a cycle out of phase.
    break_at = start + serve_len // 2
    half = max(2, period // 2)
    t = np.arange(n, dtype=np.float64)
    phase = (t % half) / half
    lam = level * (0.7 + 0.6 * 0.5 * (1.0 + np.cos(2.0 * np.pi * (phase - 0.6))))
    broken = base.copy()
    broken[break_at:] = (
        np.random.default_rng(seed + 101).poisson(lam[break_at:]).astype(np.float64)
    )

    return [
        Scenario(
            "steady",
            "clean diurnal baseline — robustness must be near-free here",
            base, base, start,
        ),
        Scenario(
            "flash_crowd",
            "three unforecastable demand spikes (x3.5) during serving",
            flash, flash, start,
        ),
        Scenario(
            "regime_shift",
            "permanent x2 demand level shift mid-serve",
            shift, shift, start,
        ),
        Scenario(
            "corruption",
            "real x3 surge whose observations black out to NaN after onset",
            corrupt_actual, corrupt_observed, start,
        ),
        Scenario(
            "nan_flash",
            "flash crowd while nan@serve.predict kills every primary forecast",
            flash, flash, start,
            faults="nan@serve.predict:*",
        ),
        Scenario(
            "drift_fault",
            "drift@serve.predict silently scales forecasts to 40% mid-run",
            base, base, start,
            faults=f"drift@serve.predict:{drift_at}=0.4",
        ),
        Scenario(
            "seasonality_break",
            "diurnal period halves mid-serve — seasonal forecasts go "
            "half a cycle out of phase",
            broken, broken, start,
        ),
    ]


def default_controller_config() -> ControllerConfig:
    """The harness's hybrid tuning: modest correction, rails on, burst on."""
    return ControllerConfig(
        kp=0.5,
        ki=0.05,
        kd=0.0,
        integral_limit=200.0,
        headroom_quantile=0.7,
        error_window=64,
        reactive_window=3,
        reactive_headroom=1.15,
        min_vms=0,
        max_vms=None,
        max_step_up=None,
        max_step_down=None,
        scale_down_cooldown=2,
        burst_streak=3,
        burst_clear=6,
        burst_quantile=0.95,
    )


def _guarded_seasonal(period: int):
    """The harness's proactive forecaster: guarded seasonal-naive.

    The seasonal model is the *primary* (not also a fallback) so that
    ``nan@serve.predict`` faults meaningfully degrade the forecast to
    last-value persistence instead of re-serving the same model.
    """
    # Lazy import: repro.serving imports repro.autoscale at module
    # level, so the reverse edge must resolve at call time.
    from repro.baselines.naive import LastValuePredictor, SeasonalNaivePredictor
    from repro.serving.guard import GuardedPredictor

    return GuardedPredictor(
        SeasonalNaivePredictor(period), fallbacks=[LastValuePredictor()]
    )


def make_policy(
    name: str,
    *,
    period: int = 48,
    config: ControllerConfig | None = None,
):
    """Fresh policy instance for one scenario run.

    Policies are stateful (guarded predictors count serves, controllers
    integrate errors), so the matrix builds a new one per cell.
    """
    if name == "predictive":
        return PredictivePolicy(_guarded_seasonal(period))
    if name == "reactive":
        return ReactivePolicy()
    if name == "hybrid":
        from repro.obs.monitor.drift import PageHinkleyDetector

        cfg = config if config is not None else default_controller_config()
        # Page-Hinkley on the controller's error stream: fires on a
        # sustained error *increase* (a silently degraded forecaster),
        # stays quiet on stationary noise — the burst trigger for
        # degradations too well-corrected to build an underprovision
        # streak.
        controller = HybridController(cfg, drift_detector=PageHinkleyDetector())
        return HybridPolicy(_guarded_seasonal(period), controller=controller)
    raise ValueError(f"unknown policy {name!r}; choose from {POLICY_NAMES}")


def default_pricing() -> PricingModel:
    """SLA-aware pricing: one cold-start *wave* fits the deadline, two don't."""
    return PricingModel(sla_deadline_seconds=400.0, sla_penalty_per_violation=0.05)


def run_scenario(
    scenario: Scenario,
    policy_name: str,
    *,
    period: int = 48,
    config: ControllerConfig | None = None,
    spec: VMSpec | None = None,
    pricing: PricingModel | None = None,
    seed: int = 0,
) -> dict:
    """One matrix cell: schedule on ``observed``, judge against ``actual``.

    The scenario's fault spec is installed (with fresh invocation
    counts) only around the scheduling pass — simulation and pricing run
    fault-free.  Returns the Fig. 10 summary + cost report + the SLA
    violation rate, plus the controller snapshot for hybrid runs.
    """
    policy = make_policy(policy_name, period=period, config=config)
    ctx = _faults.injected(scenario.faults) if scenario.faults else nullcontext()
    with ctx:
        schedule = policy.schedule(scenario.observed, scenario.start)
    result = CloudSimulator(spec=spec, seed=seed).run(
        scenario.actual[scenario.start :], schedule
    )
    pricing = pricing if pricing is not None else default_pricing()
    cost = price_run(policy.name, result, pricing)
    busy = int(np.sum(result.arrivals > 0))
    row = summarize(policy.name, result).as_dict()
    row.update(cost.as_dict())
    row["sla_violation_rate_pct"] = (
        100.0 * cost.sla_violations / busy if busy else 0.0
    )
    if isinstance(policy, HybridPolicy):
        row["controller"] = policy.controller.snapshot()
        breaker = policy.controller.breaker
        if breaker is not None:
            row["breaker_state"] = breaker.state
    return row


def run_matrix(
    scenarios: list[Scenario] | None = None,
    policies: tuple[str, ...] = POLICY_NAMES,
    *,
    period: int = 48,
    config: ControllerConfig | None = None,
    spec: VMSpec | None = None,
    pricing: PricingModel | None = None,
    seed: int = 0,
) -> dict:
    """The full scenario x policy comparison as a JSON-ready dict.

    Layout: ``{"scenarios": {scenario: {"description": ..., "policies":
    {policy: row}}}}`` — the shape ``BENCH_autoscale.json`` commits and
    the CLI renders.
    """
    if scenarios is None:
        scenarios = default_scenarios(period=period)
    out: dict = {"scenarios": {}}
    for scenario in scenarios:
        cell = {}
        for policy_name in policies:
            cell[policy_name] = run_scenario(
                scenario, policy_name,
                period=period, config=config, spec=spec,
                pricing=pricing, seed=seed,
            )
        out["scenarios"][scenario.name] = {
            "description": scenario.description,
            "faults": scenario.faults,
            "n_serve_intervals": int(scenario.actual.size - scenario.start),
            "policies": cell,
        }
    return out
