"""Provisioning policies: predictive (the paper's), reactive, oracle.

The paper's algorithm (Section IV-C): "At each interval, the JAR for the
next interval is predicted.  Right after the prediction, P_i VMs are
created in advance."  :func:`provisioning_schedule` walks any
:class:`~repro.baselines.base.Predictor` over the actual arrivals to
produce that schedule with no lookahead.

Two reference policies bound the comparison:

* :class:`ReactivePolicy` — provision what arrived last interval (the
  classic rule predictive auto-scaling is meant to beat);
* :class:`OraclePolicy` — provision exactly the future arrivals (the
  zero-error lower bound for turnaround and provisioning waste).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Predictor, walk_forward

__all__ = [
    "PredictivePolicy",
    "ReactivePolicy",
    "OraclePolicy",
    "provisioning_schedule",
]


def provisioning_schedule(
    predictor: Predictor,
    arrivals: np.ndarray,
    start: int,
    refit_every: int = 1,
) -> np.ndarray:
    """Predicted VM counts for intervals ``start..end`` of ``arrivals``.

    Each prediction uses only arrivals before the target interval
    (walk-forward); results are rounded up to whole VMs.  The schedule
    is validated finite before it reaches the simulator — the autoscaler
    must never act on a non-finite forecast, whatever predictor
    produced it.
    """
    preds = walk_forward(predictor, arrivals, start, refit_every=refit_every)
    if not np.all(np.isfinite(preds)):
        raise ValueError(
            f"predictor {predictor.name!r} produced non-finite forecasts; "
            "wrap it in repro.serving.GuardedPredictor for online use"
        )
    return np.ceil(np.maximum(preds, 0.0))


class PredictivePolicy:
    """Provision ceil(P_i) VMs ahead of each interval using a predictor."""

    def __init__(self, predictor: Predictor, refit_every: int = 1):
        self.predictor = predictor
        self.refit_every = int(refit_every)
        self.name = f"predictive[{predictor.name}]"

    def schedule(self, arrivals: np.ndarray, start: int) -> np.ndarray:
        return provisioning_schedule(
            self.predictor, arrivals, start, refit_every=self.refit_every
        )


class ReactivePolicy:
    """Provision from recent observed arrivals (generalized persistence).

    The classic rule — provision what arrived last interval — is the
    ``window=1, headroom=1.0`` default.  Generalized, the policy
    provisions ``headroom x max`` of the last ``window`` *finite*
    observations, which is the reactive tier the
    :class:`~repro.autoscale.controller.HybridController` degrades to: a
    wider window rides out single-interval dips, a headroom factor > 1
    buys margin against the one-interval reaction lag.  Non-finite
    observations (sensor outages, corrupted traces) are ignored inside
    the window; an all-non-finite window provisions 0 VMs (there is
    nothing to react to).
    """

    def __init__(self, window: int = 1, headroom: float = 1.0):
        if window < 1:
            raise ValueError("window must be >= 1")
        if headroom <= 0:
            raise ValueError("headroom must be positive")
        self.window = int(window)
        self.headroom = float(headroom)
        self.name = (
            "reactive"
            if window == 1 and headroom == 1.0
            else f"reactive[k={window},h={headroom:g}]"
        )

    def schedule(self, arrivals: np.ndarray, start: int) -> np.ndarray:
        a = np.asarray(arrivals, dtype=np.float64)
        if not 0 < start <= a.size:
            raise ValueError("start must be inside the arrivals series")
        if self.window == 1 and self.headroom == 1.0 and np.all(np.isfinite(a)):
            # Degenerate default on clean data: the original persistence
            # rule, bit-for-bit.
            return np.ceil(a[start - 1 : a.size - 1])
        out = np.empty(a.size - start)
        for j, i in enumerate(range(start, a.size)):
            tail = a[max(i - self.window, 0) : i]
            finite = tail[np.isfinite(tail)]
            peak = float(finite.max()) if finite.size else 0.0
            if self.headroom != 1.0:
                peak *= self.headroom
            out[j] = np.ceil(max(peak, 0.0))
        return out


class OraclePolicy:
    """Provision exactly the arrivals (perfect prediction bound)."""

    name = "oracle"

    def schedule(self, arrivals: np.ndarray, start: int) -> np.ndarray:
        a = np.asarray(arrivals, dtype=np.float64)
        if not 0 <= start < a.size:
            raise ValueError("start must be inside the arrivals series")
        return np.ceil(a[start:])
