"""Provisioning policies: predictive (the paper's), reactive, oracle.

The paper's algorithm (Section IV-C): "At each interval, the JAR for the
next interval is predicted.  Right after the prediction, P_i VMs are
created in advance."  :func:`provisioning_schedule` walks any
:class:`~repro.baselines.base.Predictor` over the actual arrivals to
produce that schedule with no lookahead.

Two reference policies bound the comparison:

* :class:`ReactivePolicy` — provision what arrived last interval (the
  classic rule predictive auto-scaling is meant to beat);
* :class:`OraclePolicy` — provision exactly the future arrivals (the
  zero-error lower bound for turnaround and provisioning waste).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Predictor, walk_forward

__all__ = [
    "PredictivePolicy",
    "ReactivePolicy",
    "OraclePolicy",
    "provisioning_schedule",
]


def provisioning_schedule(
    predictor: Predictor,
    arrivals: np.ndarray,
    start: int,
    refit_every: int = 1,
) -> np.ndarray:
    """Predicted VM counts for intervals ``start..end`` of ``arrivals``.

    Each prediction uses only arrivals before the target interval
    (walk-forward); results are rounded up to whole VMs.  The schedule
    is validated finite before it reaches the simulator — the autoscaler
    must never act on a non-finite forecast, whatever predictor
    produced it.
    """
    preds = walk_forward(predictor, arrivals, start, refit_every=refit_every)
    if not np.all(np.isfinite(preds)):
        raise ValueError(
            f"predictor {predictor.name!r} produced non-finite forecasts; "
            "wrap it in repro.serving.GuardedPredictor for online use"
        )
    return np.ceil(np.maximum(preds, 0.0))


class PredictivePolicy:
    """Provision ceil(P_i) VMs ahead of each interval using a predictor."""

    def __init__(self, predictor: Predictor, refit_every: int = 1):
        self.predictor = predictor
        self.refit_every = int(refit_every)
        self.name = f"predictive[{predictor.name}]"

    def schedule(self, arrivals: np.ndarray, start: int) -> np.ndarray:
        return provisioning_schedule(
            self.predictor, arrivals, start, refit_every=self.refit_every
        )


class ReactivePolicy:
    """Provision what arrived in the previous interval (persistence)."""

    name = "reactive"

    def schedule(self, arrivals: np.ndarray, start: int) -> np.ndarray:
        a = np.asarray(arrivals, dtype=np.float64)
        if not 0 < start <= a.size:
            raise ValueError("start must be inside the arrivals series")
        return np.ceil(a[start - 1 : a.size - 1])


class OraclePolicy:
    """Provision exactly the arrivals (perfect prediction bound)."""

    name = "oracle"

    def schedule(self, arrivals: np.ndarray, start: int) -> np.ndarray:
        a = np.asarray(arrivals, dtype=np.float64)
        if not 0 <= start < a.size:
            raise ValueError("start must be inside the arrivals series")
        return np.ceil(a[start:])
