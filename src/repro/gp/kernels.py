"""Covariance kernels for GP regression.

All kernels expose hyperparameters through a flat log-space vector
``theta`` (positivity for free, and L-BFGS behaves far better in log
space).  ``gradients(X)`` returns the stack of ``dK/dtheta_j`` matrices
needed for analytic marginal-likelihood gradients, so fitting the GP
surrogate never falls back to finite differences.

Distance computations use the ``(a-b)^2 = a^2 + b^2 - 2ab`` expansion —
one GEMM instead of an O(n^2 d) broadcast — per the HPC guide's
"vectorize the bottleneck" rule.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Kernel",
    "RBF",
    "Matern32",
    "Matern52",
    "WhiteNoise",
    "ConstantKernel",
    "Sum",
    "Product",
]


def _sq_dists(X1: np.ndarray, X2: np.ndarray, inv_ls: np.ndarray) -> np.ndarray:
    """Pairwise squared distances after per-dimension scaling by 1/lengthscale."""
    A = X1 * inv_ls
    B = X2 * inv_ls
    aa = np.sum(A * A, axis=1)[:, None]
    bb = np.sum(B * B, axis=1)[None, :]
    d2 = aa + bb - 2.0 * (A @ B.T)
    np.maximum(d2, 0.0, out=d2)  # clamp tiny negative round-off
    return d2


class Kernel:
    """Base kernel. Subclasses implement ``__call__`` and ``gradients``."""

    @property
    def theta(self) -> np.ndarray:
        """Flat log-space hyperparameter vector."""
        raise NotImplementedError

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        raise NotImplementedError

    @property
    def bounds(self) -> np.ndarray:
        """(n_theta, 2) log-space box constraints for the optimizer."""
        raise NotImplementedError

    @property
    def n_theta(self) -> int:
        return self.theta.size

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        raise NotImplementedError

    def diag(self, X: np.ndarray) -> np.ndarray:
        """k(x, x) for each row — cheaper than the full Gram diagonal."""
        return np.diag(self(X))

    def gradients(self, X: np.ndarray) -> np.ndarray:
        """Stack (n_theta, n, n) of dK(X,X)/dtheta_j."""
        raise NotImplementedError

    def clone(self) -> "Kernel":
        """Deep copy (used by multi-restart optimization)."""
        import copy

        return copy.deepcopy(self)

    # composition sugar ------------------------------------------------
    def __add__(self, other: "Kernel") -> "Sum":
        return Sum(self, other)

    def __mul__(self, other: "Kernel") -> "Product":
        return Product(self, other)


class _Stationary(Kernel):
    """Shared machinery for variance + (possibly ARD) lengthscale kernels."""

    def __init__(
        self,
        variance: float = 1.0,
        lengthscale: float | np.ndarray = 1.0,
        n_dims: int | None = None,
        ard: bool = False,
    ):
        if variance <= 0:
            raise ValueError("variance must be positive")
        ls = np.atleast_1d(np.asarray(lengthscale, dtype=np.float64))
        if np.any(ls <= 0):
            raise ValueError("lengthscales must be positive")
        if ard:
            if n_dims is None and ls.size == 1:
                raise ValueError("ARD kernels need n_dims or a lengthscale vector")
            n_dims = n_dims or ls.size
            if ls.size == 1:
                ls = np.full(n_dims, ls[0])
            elif ls.size != n_dims:
                raise ValueError("lengthscale vector length != n_dims")
        else:
            if ls.size != 1:
                raise ValueError("non-ARD kernel takes a scalar lengthscale")
        self.ard = ard
        self._log_var = float(np.log(variance))
        self._log_ls = np.log(ls)

    # --- hyperparameters ---------------------------------------------
    @property
    def variance(self) -> float:
        return float(np.exp(self._log_var))

    @property
    def lengthscale(self) -> np.ndarray:
        return np.exp(self._log_ls)

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([[self._log_var], self._log_ls])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=np.float64)
        if value.size != 1 + self._log_ls.size:
            raise ValueError("theta size mismatch")
        self._log_var = float(value[0])
        self._log_ls = value[1:].copy()

    @property
    def bounds(self) -> np.ndarray:
        b = np.empty((self.n_theta, 2))
        b[0] = (np.log(1e-6), np.log(1e6))   # variance
        b[1:] = (np.log(1e-3), np.log(1e3))  # lengthscales
        return b

    def _inv_ls(self, d: int) -> np.ndarray:
        ls = self.lengthscale
        if not self.ard and d > 1:
            ls = np.full(d, ls[0])
        return 1.0 / ls


class RBF(_Stationary):
    """Squared-exponential kernel: v * exp(-0.5 * r^2)."""

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        X2 = X1 if X2 is None else X2
        d2 = _sq_dists(X1, X2, self._inv_ls(X1.shape[1]))
        return self.variance * np.exp(-0.5 * d2)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(X.shape[0], self.variance)

    def gradients(self, X: np.ndarray) -> np.ndarray:
        n, d = X.shape
        inv_ls = self._inv_ls(d)
        K = self(X)
        grads = np.empty((self.n_theta, n, n))
        grads[0] = K  # d/d log(v): K itself
        if self.ard:
            for j in range(d):
                diff = (X[:, j, None] - X[None, :, j]) * inv_ls[j]
                grads[1 + j] = K * diff * diff  # d/d log(ls_j)
        else:
            d2 = _sq_dists(X, X, inv_ls)
            grads[1] = K * d2
        return grads


class _Matern(_Stationary):
    """Shared Matérn machinery; subclasses set nu-specific forms."""

    def _r(self, X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
        return np.sqrt(_sq_dists(X1, X2, self._inv_ls(X1.shape[1])))

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(X.shape[0], self.variance)


class Matern32(_Matern):
    """Matérn nu=3/2: v * (1 + a r) exp(-a r), a = sqrt(3)."""

    _A = np.sqrt(3.0)

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        X2 = X1 if X2 is None else X2
        ar = self._A * self._r(X1, X2)
        return self.variance * (1.0 + ar) * np.exp(-ar)

    def gradients(self, X: np.ndarray) -> np.ndarray:
        n, d = X.shape
        r = self._r(X, X)
        ar = self._A * r
        e = np.exp(-ar)
        K = self.variance * (1.0 + ar) * e
        grads = np.empty((self.n_theta, n, n))
        grads[0] = K
        # dK/dr = -v a^2 r e^{-ar}; dr/dlog(ls_j) = -(diff_j/ls_j)^2 / r
        base = self.variance * (self._A**2) * e  # shared factor (dK/dr)/(-r)... see below
        if self.ard:
            inv_ls = self._inv_ls(d)
            for j in range(d):
                diff2 = ((X[:, j, None] - X[None, :, j]) * inv_ls[j]) ** 2
                grads[1 + j] = base * diff2
        else:
            grads[1] = base * r * r
        return grads


class Matern52(_Matern):
    """Matérn nu=5/2: v * (1 + a r + a^2 r^2/3) exp(-a r), a = sqrt(5)."""

    _A = np.sqrt(5.0)

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        X2 = X1 if X2 is None else X2
        ar = self._A * self._r(X1, X2)
        return self.variance * (1.0 + ar + ar * ar / 3.0) * np.exp(-ar)

    def gradients(self, X: np.ndarray) -> np.ndarray:
        n, d = X.shape
        r = self._r(X, X)
        ar = self._A * r
        e = np.exp(-ar)
        K = self.variance * (1.0 + ar + ar * ar / 3.0) * e
        grads = np.empty((self.n_theta, n, n))
        grads[0] = K
        # dK/d(r^2) * d(r^2)/dlog(ls_j);  dK/dr = -v a^2 r (1+ar)/3 e^{-ar}
        base = self.variance * (self._A**2) * (1.0 + ar) * e / 3.0
        if self.ard:
            inv_ls = self._inv_ls(d)
            for j in range(d):
                diff2 = ((X[:, j, None] - X[None, :, j]) * inv_ls[j]) ** 2
                grads[1 + j] = base * diff2
        else:
            grads[1] = base * r * r
        return grads


class WhiteNoise(Kernel):
    """Diagonal noise kernel: sigma^2 * I (only on identical index pairs)."""

    def __init__(self, noise: float = 1e-4):
        if noise <= 0:
            raise ValueError("noise must be positive")
        self._log_noise = float(np.log(noise))

    @property
    def noise(self) -> float:
        return float(np.exp(self._log_noise))

    @property
    def theta(self) -> np.ndarray:
        return np.array([self._log_noise])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self._log_noise = float(np.asarray(value).ravel()[0])

    @property
    def bounds(self) -> np.ndarray:
        return np.array([[np.log(1e-10), np.log(1e2)]])

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        if X2 is None or X2 is X1:
            return self.noise * np.eye(X1.shape[0])
        return np.zeros((X1.shape[0], X2.shape[0]))

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(X.shape[0], self.noise)

    def gradients(self, X: np.ndarray) -> np.ndarray:
        return (self.noise * np.eye(X.shape[0]))[None, :, :]


class ConstantKernel(Kernel):
    """Constant covariance c (models a global offset/bias)."""

    def __init__(self, constant: float = 1.0):
        if constant <= 0:
            raise ValueError("constant must be positive")
        self._log_c = float(np.log(constant))

    @property
    def constant(self) -> float:
        return float(np.exp(self._log_c))

    @property
    def theta(self) -> np.ndarray:
        return np.array([self._log_c])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        self._log_c = float(np.asarray(value).ravel()[0])

    @property
    def bounds(self) -> np.ndarray:
        return np.array([[np.log(1e-6), np.log(1e6)]])

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        X2 = X1 if X2 is None else X2
        return np.full((X1.shape[0], X2.shape[0]), self.constant)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(X.shape[0], self.constant)

    def gradients(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        return np.full((1, n, n), self.constant)


class _Binary(Kernel):
    """Shared theta plumbing for two-child composite kernels."""

    def __init__(self, left: Kernel, right: Kernel):
        self.left = left
        self.right = right

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([self.left.theta, self.right.theta])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=np.float64)
        nl = self.left.n_theta
        self.left.theta = value[:nl]
        self.right.theta = value[nl:]

    @property
    def bounds(self) -> np.ndarray:
        return np.vstack([self.left.bounds, self.right.bounds])


class Sum(_Binary):
    """k = k_left + k_right (e.g. signal + white noise)."""

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        return self.left(X1, X2) + self.right(X1, X2)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.left.diag(X) + self.right.diag(X)

    def gradients(self, X: np.ndarray) -> np.ndarray:
        return np.concatenate([self.left.gradients(X), self.right.gradients(X)])


class Product(_Binary):
    """k = k_left * k_right (element-wise)."""

    def __call__(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        return self.left(X1, X2) * self.right(X1, X2)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.left.diag(X) * self.right.diag(X)

    def gradients(self, X: np.ndarray) -> np.ndarray:
        Kl = self.left(X)
        Kr = self.right(X)
        gl = self.left.gradients(X) * Kr[None]
        gr = self.right.gradients(X) * Kl[None]
        return np.concatenate([gl, gr])
