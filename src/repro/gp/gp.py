"""Exact Gaussian-process regression via Cholesky factorization.

This is the non-linear regression engine LoadDynamics' BO loop uses to
model (hyperparameters → cross-validation MAPE) (paper Section III-A).

Implementation follows Rasmussen & Williams Algorithm 2.1:

    L   = chol(K + sigma_n^2 I)
    a   = L^-T (L^-1 y)
    mu* = k*^T a
    v   = L^-1 k*
    s*  = k(x*,x*) - v^T v

with the log marginal likelihood and its analytic gradient used to fit
kernel hyperparameters by multi-restart L-BFGS-B.  Targets are
standardized internally so kernel-variance priors stay workload-agnostic
(JAR MAPEs span 1%–400% across the paper's 14 configurations).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_solve, cholesky, get_lapack_funcs, solve_triangular
from scipy.optimize import minimize

from repro.gp.kernels import RBF, Kernel
from repro.obs import metrics as _metrics

__all__ = ["GaussianProcessRegressor"]

_JITTERS = (0.0, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2)

#: Relative floor for the Schur complement in a rank-1 Cholesky append;
#: below it the grown factor would be numerically rank-deficient and
#: :meth:`GaussianProcessRegressor.update` falls back to a full
#: refactorization with jitter escalation.
_SCHUR_FLOOR = 1e-10


def _chol_with_jitter(K: np.ndarray) -> tuple[np.ndarray, float]:
    """Lower Cholesky of K, escalating diagonal jitter until it succeeds."""
    scale = float(np.mean(np.diag(K))) or 1.0
    for jitter in _JITTERS:
        try:
            L = cholesky(K + jitter * scale * np.eye(K.shape[0]), lower=True)
            return L, jitter * scale
        except np.linalg.LinAlgError:
            continue
    raise np.linalg.LinAlgError("kernel matrix not positive definite even with jitter")


class GaussianProcessRegressor:
    """GP regression with optional marginal-likelihood kernel fitting.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to an isotropic RBF.  The observation
        noise is a separate explicit ``noise`` term rather than a WhiteNoise
        kernel summand so the predictive variance reported is that of the
        *latent* function (what EI wants).
    noise:
        Observation noise variance sigma_n^2 (in standardized-target units).
    optimize:
        If true, :meth:`fit` tunes kernel hyperparameters (and the noise if
        ``optimize_noise``) by maximizing the log marginal likelihood.
    n_restarts:
        Extra random restarts for the optimizer (first start is the
        current kernel configuration).
    refactor_every:
        Rank-1 :meth:`update` appends are followed by an *exact* full
        refactorization every this many updates, bounding accumulated
        float drift in the grown Cholesky factor.
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        noise: float = 1e-6,
        optimize: bool = True,
        optimize_noise: bool = True,
        n_restarts: int = 2,
        seed: int = 0,
        refactor_every: int = 50,
    ):
        if noise <= 0:
            raise ValueError("noise must be positive")
        if refactor_every < 1:
            raise ValueError("refactor_every must be >= 1")
        self.kernel = kernel if kernel is not None else RBF()
        self.noise = float(noise)
        self.optimize = bool(optimize)
        self.optimize_noise = bool(optimize_noise)
        self.n_restarts = int(n_restarts)
        self.refactor_every = int(refactor_every)
        self._rng = np.random.default_rng(seed)
        self._X: np.ndarray | None = None
        self._y_raw: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._L: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        #: Absolute diagonal jitter baked into the current factor — a
        #: rank-1 append must extend the *same* regularized matrix.
        self._jitter = 0.0
        self._updates_since_refactor = 0

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._L is not None

    @property
    def n_observations(self) -> int:
        return 0 if self._X is None else int(self._X.shape[0])

    def _pack_theta(self) -> np.ndarray:
        t = self.kernel.theta
        if self.optimize_noise:
            t = np.concatenate([t, [np.log(self.noise)]])
        return t

    def _unpack_theta(self, theta: np.ndarray) -> None:
        nk = self.kernel.n_theta
        self.kernel.theta = theta[:nk]
        if self.optimize_noise:
            self.noise = float(np.exp(theta[nk]))

    def _theta_bounds(self) -> np.ndarray:
        b = self.kernel.bounds
        if self.optimize_noise:
            b = np.vstack([b, [[np.log(1e-8), np.log(1e1)]]])
        return b

    # ------------------------------------------------------------------
    def log_marginal_likelihood(
        self, theta: np.ndarray | None = None, eval_gradient: bool = False
    ):
        """LML of the standardized training targets under the kernel.

        With ``eval_gradient`` also returns d(LML)/d(theta) using the
        trace identity  dLML/dθ = 0.5 tr((αα^T − K^-1) dK/dθ).
        """
        if self._X is None:
            raise RuntimeError("call fit() first")
        if theta is not None:
            self._unpack_theta(np.asarray(theta, dtype=np.float64))
        X, y = self._X, self._y_standardized
        n = X.shape[0]
        K = self.kernel(X) + self.noise * np.eye(n)
        L, _ = _chol_with_jitter(K)
        alpha = cho_solve((L, True), y)
        lml = (
            -0.5 * float(y @ alpha)
            - float(np.sum(np.log(np.diag(L))))
            - 0.5 * n * np.log(2.0 * np.pi)
        )
        if not eval_gradient:
            return lml
        # K^-1 from the existing triangular factor via LAPACK ?potri
        # (~n^3/3) instead of cho_solve against a dense identity (two
        # full triangular solves, ~n^3).  The full inverse is genuinely
        # consumed here — every dK/dtheta_j is dense — while the noise
        # gradient below reads only its trace (the W diagonal).
        potri, = get_lapack_funcs(("potri",), (L,))
        Kinv, info = potri(L, lower=1)
        if info == 0:
            Kinv = np.tril(Kinv) + np.tril(Kinv, -1).T
        else:  # pragma: no cover - potri failure is a broken factor
            Kinv = cho_solve((L, True), np.eye(n))
        W = np.outer(alpha, alpha) - Kinv
        grads_K = self.kernel.gradients(X)
        g = 0.5 * np.einsum("ij,tij->t", W, grads_K)
        if self.optimize_noise:
            g_noise = 0.5 * np.trace(W) * self.noise  # chain rule through log
            g = np.concatenate([g, [g_noise]])
        return lml, g

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Fit on rows ``X`` with scalar targets ``y``."""
        from repro.resilience import faults as _faults

        injector = _faults.active()
        if injector is not None:
            injector.maybe_fire("gp.fit")
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D (n_samples, n_features)")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y length mismatch")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a GP on zero observations")
        self._X = X
        self._y_raw = y.copy()
        self._restandardize()

        if self.optimize and X.shape[0] >= 2:
            self._optimize_hyperparameters()

        self._refactor()
        return self

    def _restandardize(self) -> None:
        """Recompute target standardization over the full raw targets."""
        y = self._y_raw
        self._y_mean = float(np.mean(y))
        std = float(np.std(y))
        self._y_std = std if std > 1e-12 else 1.0
        self._y_standardized = (y - self._y_mean) / self._y_std

    def _refactor(self) -> None:
        """Exact O(n^3) factorization of the current training set."""
        K = self.kernel(self._X) + self.noise * np.eye(self._X.shape[0])
        self._L, self._jitter = _chol_with_jitter(K)
        self._alpha = cho_solve((self._L, True), self._y_standardized)
        self._updates_since_refactor = 0
        _metrics.counter("gp.refit.full").inc()

    # ------------------------------------------------------------------
    def update(self, x: np.ndarray, y: float) -> "GaussianProcessRegressor":
        """Incorporate one new observation with a rank-1 Cholesky append.

        Grows the lower factor ``L`` by one row — a cross-covariance
        column, one triangular solve, and a Schur complement — so the
        cost is O(n^2) instead of the O(n^3) refactorization a full
        :meth:`fit` performs.  Target standardization and ``alpha`` are
        recomputed against the full raw target vector (also O(n^2)), so
        the resulting posterior matches a from-scratch ``fit`` with the
        same kernel hyperparameters (``optimize=False``) to round-off.
        Hyperparameters are **not** re-optimized here; callers that want
        re-optimization periodically call :meth:`fit` instead.

        Falls back to a full refactorization (with jitter escalation)
        when the Schur complement is not safely positive, and performs
        an exact refactorization every ``refactor_every`` updates to
        bound float drift.  The ``gp.refit.rank1`` / ``gp.refit.full``
        counters record which path ran.
        """
        if not self.is_fitted:
            raise RuntimeError("call fit() before update()")
        x = np.asarray(x, dtype=np.float64)
        x2d = x[None, :] if x.ndim == 1 else x
        if x2d.shape != (1, self._X.shape[1]):
            raise ValueError(
                f"update() takes one row of {self._X.shape[1]} features, "
                f"got shape {x.shape}"
            )
        X_old, L_old, n = self._X, self._L, self._X.shape[0]
        self._X = np.vstack([X_old, x2d])
        self._y_raw = np.append(self._y_raw, float(y))
        self._restandardize()

        if self._updates_since_refactor + 1 >= self.refactor_every:
            self._refactor()
            return self

        ks = self.kernel(X_old, x2d)  # (n, 1)
        # Direct LAPACK calls (the exact routines scipy's
        # solve_triangular / cho_solve dispatch to, so numerics are
        # bit-identical) — the wrappers' validation layers cost more
        # than the O(n^2) solves themselves at BO-history sizes.
        trtrs, potrs = get_lapack_funcs(("trtrs", "potrs"), (L_old,))
        cs, info = trtrs(L_old, ks, lower=1)
        if info != 0:
            self._refactor()
            return self
        c = cs.ravel()
        knn = float(self.kernel.diag(x2d)[0]) + self.noise + self._jitter
        d2 = knn - float(c @ c)
        if not np.isfinite(d2) or d2 <= _SCHUR_FLOOR * knn:
            # The appended point makes the factor numerically rank
            # deficient (near-duplicate row, collapsed lengthscale);
            # rebuild exactly, escalating jitter if needed.
            self._refactor()
            return self

        # Fortran order so the LAPACK calls here (and on the next
        # append) bind the factor directly instead of copying it.
        L = np.zeros((n + 1, n + 1), order="F")
        L[:n, :n] = L_old
        L[n, :n] = c
        L[n, n] = np.sqrt(d2)
        self._L = L
        alpha, info = potrs(L, self._y_standardized, lower=1)
        if info != 0:  # pragma: no cover - factor was just validated
            self._refactor()
            return self
        self._alpha = alpha
        self._updates_since_refactor += 1
        _metrics.counter("gp.refit.rank1").inc()
        return self

    def _optimize_hyperparameters(self) -> None:
        bounds = self._theta_bounds()

        def negative_lml(theta):
            try:
                lml, g = self.log_marginal_likelihood(theta, eval_gradient=True)
            except np.linalg.LinAlgError:
                return 1e25, np.zeros(theta.shape)
            return -lml, -g

        starts = [self._pack_theta()]
        for _ in range(max(0, self.n_restarts)):
            starts.append(
                self._rng.uniform(bounds[:, 0], bounds[:, 1])
            )
        best_val = np.inf
        best_theta = starts[0]
        for s in starts:
            res = minimize(
                negative_lml,
                s,
                jac=True,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": 200},
            )
            if np.isfinite(res.fun) and res.fun < best_val:
                best_val = res.fun
                best_theta = res.x
        self._unpack_theta(best_theta)

    # ------------------------------------------------------------------
    def predict(
        self, Xs: np.ndarray, return_std: bool = False
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """Posterior mean (and latent std) at query rows ``Xs``."""
        if not self.is_fitted:
            raise RuntimeError("call fit() first")
        Xs = np.asarray(Xs, dtype=np.float64)
        if Xs.ndim == 1:
            Xs = Xs[None, :]
        Ks = self.kernel(self._X, Xs)  # (n, m)
        mean = Ks.T @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = solve_triangular(self._L, Ks, lower=True)
        var = self.kernel.diag(Xs) - np.sum(v * v, axis=0)
        np.maximum(var, 1e-15, out=var)
        return mean, np.sqrt(var) * self._y_std

    def sample_posterior(
        self, Xs: np.ndarray, n_samples: int = 1, seed: int | None = None
    ) -> np.ndarray:
        """Draw joint posterior function samples at ``Xs`` (for Thompson-style use)."""
        if not self.is_fitted:
            raise RuntimeError("call fit() first")
        Xs = np.asarray(Xs, dtype=np.float64)
        Ks = self.kernel(self._X, Xs)
        mean = Ks.T @ self._alpha
        v = solve_triangular(self._L, Ks, lower=True)
        cov = self.kernel(Xs) - v.T @ v
        Lc, _ = _chol_with_jitter(cov + 1e-12 * np.eye(Xs.shape[0]))
        rng = self._rng if seed is None else np.random.default_rng(seed)
        z = rng.standard_normal((Xs.shape[0], n_samples))
        draws = mean[:, None] + Lc @ z
        return (draws * self._y_std + self._y_mean).T
