"""Gaussian-process regression substrate (replaces GPyOpt's internals).

LoadDynamics' Bayesian Optimization builds a GP regression model over
explored hyperparameter sets (paper Section III-A).  This subpackage
provides the probabilistic model:

* :mod:`repro.gp.kernels` — RBF (ARD), Matérn 3/2 & 5/2, white noise,
  sums/products, all parameterized in log-space with analytic gradients;
* :mod:`repro.gp.gp` — exact GP regression via Cholesky factorization
  with marginal-likelihood hyperparameter optimization (L-BFGS-B,
  multi-restart).
"""

from repro.gp.gp import GaussianProcessRegressor
from repro.gp.kernels import (
    RBF,
    ConstantKernel,
    Kernel,
    Matern32,
    Matern52,
    Product,
    Sum,
    WhiteNoise,
)

__all__ = [
    "GaussianProcessRegressor",
    "Kernel",
    "RBF",
    "Matern32",
    "Matern52",
    "WhiteNoise",
    "ConstantKernel",
    "Sum",
    "Product",
]
