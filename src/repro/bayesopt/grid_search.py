"""Grid search comparator (paper Section III-A: "less effective than BO").

Enumerates a full-factorial grid in a deterministic order.  Also the
engine behind the **LSTMBruteForce** baseline of Fig. 9: brute force is
grid search run to exhaustion over a dense grid (the paper reports up to
six weeks per workload at full density; our benches use reduced grids).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.bayesopt.optimizer import TrialRecord, record_trial, run_search
from repro.bayesopt.space import SearchSpace

__all__ = ["GridSearch"]


class GridSearch:
    """Deterministic full-factorial sweep over a :class:`SearchSpace`."""

    def __init__(
        self,
        space: SearchSpace,
        points_per_dim: int = 3,
        shuffle: bool = False,
        seed: int = 0,
    ):
        self.space = space
        self.points_per_dim = int(points_per_dim)
        self._grid = space.grid(points_per_dim)
        if shuffle:
            rng = np.random.default_rng(seed)
            rng.shuffle(self._grid)
        self._cursor = 0
        self.history: list[TrialRecord] = []
        self._excluded = None

    # ------------------------------------------------------------------
    # resilience hooks (same contract as BayesianOptimizer)
    # ------------------------------------------------------------------
    def set_excluded(self, predicate) -> None:
        """Skip grid points for which ``predicate`` is true (quarantine)."""
        self._excluded = predicate

    def search_state(self) -> dict:
        return {"cursor": self._cursor}

    def restore_search_state(self, state: dict) -> None:
        self._cursor = int(state["cursor"])

    @property
    def n_trials(self) -> int:
        return len(self.history)

    @property
    def grid_size(self) -> int:
        return len(self._grid)

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._grid)

    @property
    def best_record(self) -> TrialRecord:
        if not self.history:
            raise RuntimeError("no trials evaluated yet")
        return min(self.history, key=lambda r: r.value)

    @property
    def best_config(self) -> dict:
        return dict(self.best_record.config)

    @property
    def best_value(self) -> float:
        return self.best_record.value

    def suggest(self) -> dict:
        """Next unexplored, non-quarantined grid point (raises when
        exhausted)."""
        while not self.exhausted:
            config = self._grid[self._cursor]
            self._cursor += 1
            if self._excluded is not None and self._excluded(config):
                continue
            return dict(config)
        raise StopIteration("grid exhausted")

    def suggest_batch(self, q: int) -> list[dict]:
        """Next up-to-``q`` grid points for concurrent evaluation.

        Returns a partial batch when the grid runs out mid-batch and
        raises :class:`StopIteration` only when no points remain at all.
        ``suggest_batch(1)`` reduces exactly to :meth:`suggest`.
        """
        if q < 1:
            raise ValueError("batch size q must be >= 1")
        if q == 1:
            return [self.suggest()]
        configs: list[dict] = []
        for _ in range(q):
            try:
                configs.append(self.suggest())
            except StopIteration:
                if not configs:
                    raise
                break
        return configs

    def tell(self, config: dict, value: float, **metadata) -> TrialRecord:
        self.space.validate(config)
        if not np.isfinite(value):
            value = 1e6
        record = TrialRecord(
            iteration=self.n_trials, config=dict(config), value=float(value), metadata=metadata
        )
        self.history.append(record)
        record_trial(record, optimizer="grid")
        return record

    def run(
        self,
        objective: Callable[[dict], float],
        n_iters: int | None = None,
        callback: Callable[[TrialRecord], None] | None = None,
        n_workers: int | None = None,
    ) -> TrialRecord:
        """Sweep the grid (or its first ``n_iters`` points)."""
        budget = self.grid_size - self._cursor if n_iters is None else n_iters
        if budget < 1:
            raise ValueError("n_iters must be >= 1")
        return run_search(self, objective, budget, callback, n_workers)
