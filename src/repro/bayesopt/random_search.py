"""Random search comparator (paper Section III-A).

The paper found random search reaches similar accuracy to BO but needs
more time; it shares the ask/tell/run interface of
:class:`~repro.bayesopt.optimizer.BayesianOptimizer` so the ablation
bench can swap optimizers without touching the evaluation loop.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.bayesopt.optimizer import TrialRecord, record_trial, run_search
from repro.bayesopt.space import SearchSpace

__all__ = ["RandomSearch"]


class RandomSearch:
    """Uniform random sampling over a :class:`SearchSpace`."""

    def __init__(self, space: SearchSpace, seed: int = 0, avoid_duplicates: bool = True):
        self.space = space
        self._rng = np.random.default_rng(seed)
        self.avoid_duplicates = bool(avoid_duplicates)
        self.history: list[TrialRecord] = []
        self._excluded = None
        self._pending_batch: list[dict] = []

    # ------------------------------------------------------------------
    # resilience hooks (same contract as BayesianOptimizer)
    # ------------------------------------------------------------------
    def set_excluded(self, predicate) -> None:
        """Ban configs for which ``predicate`` is true (quarantine hook)."""
        self._excluded = predicate

    def search_state(self) -> dict:
        return {"rng": self._rng.bit_generator.state}

    def restore_search_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]

    @property
    def n_trials(self) -> int:
        return len(self.history)

    @property
    def best_record(self) -> TrialRecord:
        if not self.history:
            raise RuntimeError("no trials evaluated yet")
        return min(self.history, key=lambda r: r.value)

    @property
    def best_config(self) -> dict:
        return dict(self.best_record.config)

    @property
    def best_value(self) -> float:
        return self.best_record.value

    def suggest(self) -> dict:
        """Draw a uniform config (retrying a few times to dodge repeats
        and quarantined configs)."""
        retries = 16 if (self.avoid_duplicates or self._excluded is not None) else 1
        for _ in range(retries):
            config = self.space.sample(self._rng, 1)[0]
            if self._excluded is not None and self._excluded(config):
                continue
            if not self.avoid_duplicates or not (
                any(r.config == config for r in self.history)
                or any(p == config for p in self._pending_batch)
            ):
                return config
        return config

    def suggest_batch(self, q: int) -> list[dict]:
        """Draw ``q`` configs for concurrent evaluation.

        Deduplication sees history *plus* the points already in this
        batch, which is exactly what serial ``suggest`` would have seen
        at the same trial index — the RNG stream (and therefore every
        proposed config) is identical to ``q`` serial suggest/tell
        rounds.  ``suggest_batch(1)`` reduces exactly to
        :meth:`suggest`.
        """
        if q < 1:
            raise ValueError("batch size q must be >= 1")
        self._pending_batch = []
        if q == 1:
            return [self.suggest()]
        configs: list[dict] = []
        for _ in range(q):
            config = self.suggest()
            configs.append(config)
            self._pending_batch.append(config)
        return configs

    def tell(self, config: dict, value: float, **metadata) -> TrialRecord:
        self.space.validate(config)
        if not np.isfinite(value):
            value = 1e6
        record = TrialRecord(
            iteration=self.n_trials, config=dict(config), value=float(value), metadata=metadata
        )
        self.history.append(record)
        if self._pending_batch:
            try:
                self._pending_batch.remove(config)
            except ValueError:
                pass
        record_trial(record, optimizer="random")
        return record

    def run(
        self,
        objective: Callable[[dict], float],
        n_iters: int,
        callback: Callable[[TrialRecord], None] | None = None,
        n_workers: int | None = None,
    ) -> TrialRecord:
        if n_iters < 1:
            raise ValueError("n_iters must be >= 1")
        return run_search(self, objective, n_iters, callback, n_workers)
