"""Mixed hyperparameter search spaces with unit-cube encoding.

Table III of the paper defines per-workload box ranges for the four tuned
hyperparameters (history length ``n``, cell size, layer count, batch
size).  The GP surrogate works in a normalized [0, 1]^d cube; this module
owns the bidirectional mapping, including log-scaling for ranges spanning
orders of magnitude (history length 1–512, batch 16–1024) so the
surrogate sees them at comparable resolution.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["IntParam", "FloatParam", "CategoricalParam", "SearchSpace"]


@dataclass(frozen=True)
class IntParam:
    """Integer parameter on [low, high] inclusive; optionally log-scaled."""

    name: str
    low: int
    high: int
    log: bool = False

    def __post_init__(self):
        if self.low > self.high:
            raise ValueError(f"{self.name}: low > high")
        if self.log and self.low < 1:
            raise ValueError(f"{self.name}: log scale requires low >= 1")

    def to_unit(self, value: int) -> float:
        if not self.low <= value <= self.high:
            raise ValueError(f"{self.name}={value} outside [{self.low}, {self.high}]")
        if self.high == self.low:
            return 0.0
        if self.log:
            return (math.log(value) - math.log(self.low)) / (
                math.log(self.high) - math.log(self.low)
            )
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> int:
        u = min(max(float(u), 0.0), 1.0)
        if self.log:
            raw = math.exp(
                math.log(self.low) + u * (math.log(self.high) - math.log(self.low))
            )
        else:
            raw = self.low + u * (self.high - self.low)
        return int(min(max(round(raw), self.low), self.high))

    def sample(self, rng: np.random.Generator) -> int:
        return self.from_unit(rng.uniform())

    def grid_values(self, k: int) -> list[int]:
        """Up to k distinct values evenly spaced in the (possibly log) range."""
        us = np.linspace(0.0, 1.0, max(2, k)) if self.high > self.low else [0.0]
        vals = sorted({self.from_unit(u) for u in us})
        return vals


@dataclass(frozen=True)
class FloatParam:
    """Continuous parameter on [low, high]; optionally log-scaled."""

    name: str
    low: float
    high: float
    log: bool = False

    def __post_init__(self):
        if self.low > self.high:
            raise ValueError(f"{self.name}: low > high")
        if self.log and self.low <= 0:
            raise ValueError(f"{self.name}: log scale requires low > 0")

    def to_unit(self, value: float) -> float:
        if not self.low <= value <= self.high:
            raise ValueError(f"{self.name}={value} outside [{self.low}, {self.high}]")
        if self.high == self.low:
            return 0.0
        if self.log:
            return (math.log(value) - math.log(self.low)) / (
                math.log(self.high) - math.log(self.low)
            )
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> float:
        u = min(max(float(u), 0.0), 1.0)
        if self.log:
            raw = math.exp(
                math.log(self.low) + u * (math.log(self.high) - math.log(self.low))
            )
        else:
            raw = self.low + u * (self.high - self.low)
        # exp/log round-off can land a hair outside the box; clamp.
        return min(max(raw, self.low), self.high)

    def sample(self, rng: np.random.Generator) -> float:
        return self.from_unit(rng.uniform())

    def grid_values(self, k: int) -> list[float]:
        if self.high == self.low:
            return [self.low]
        return [self.from_unit(u) for u in np.linspace(0.0, 1.0, max(2, k))]


@dataclass(frozen=True)
class CategoricalParam:
    """Unordered finite choice (e.g. activation or loss function, §V)."""

    name: str
    choices: tuple = field(default_factory=tuple)

    def __post_init__(self):
        if len(self.choices) == 0:
            raise ValueError(f"{self.name}: choices must be non-empty")

    def to_unit(self, value: Any) -> float:
        try:
            idx = self.choices.index(value)
        except ValueError:
            raise ValueError(f"{self.name}={value!r} not in {self.choices}") from None
        if len(self.choices) == 1:
            return 0.0
        return idx / (len(self.choices) - 1)

    def from_unit(self, u: float) -> Any:
        u = min(max(float(u), 0.0), 1.0)
        idx = int(round(u * (len(self.choices) - 1)))
        return self.choices[idx]

    def sample(self, rng: np.random.Generator) -> Any:
        return self.choices[int(rng.integers(len(self.choices)))]

    def grid_values(self, k: int) -> list:
        return list(self.choices)


Param = IntParam | FloatParam | CategoricalParam


class SearchSpace:
    """Ordered collection of parameters with vector encode/decode.

    The encoding maps a config dict to a point in [0, 1]^d, one dimension
    per parameter; decoding rounds integers/categoricals back, so the BO
    acquisition optimizer can work in a continuous relaxation.
    """

    def __init__(self, params: list[Param]):
        if not params:
            raise ValueError("search space needs at least one parameter")
        names = [p.name for p in params]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names in {names}")
        self.params = list(params)

    @property
    def n_dims(self) -> int:
        return len(self.params)

    @property
    def names(self) -> list[str]:
        return [p.name for p in self.params]

    def __iter__(self):
        return iter(self.params)

    def __getitem__(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(name)

    # ------------------------------------------------------------------
    def validate(self, config: dict) -> None:
        """Raise if ``config`` is missing keys or violates any range."""
        missing = set(self.names) - set(config)
        if missing:
            raise ValueError(f"config missing parameters: {sorted(missing)}")
        for p in self.params:
            p.to_unit(config[p.name])  # raises when out of range

    def to_unit(self, config: dict) -> np.ndarray:
        """Encode a config dict as a unit-cube vector."""
        return np.array([p.to_unit(config[p.name]) for p in self.params])

    def from_unit(self, u: np.ndarray) -> dict:
        """Decode a unit-cube vector into a valid config dict."""
        u = np.asarray(u, dtype=np.float64).ravel()
        if u.size != self.n_dims:
            raise ValueError(f"expected {self.n_dims}-dim vector, got {u.size}")
        return {p.name: p.from_unit(u[i]) for i, p in enumerate(self.params)}

    def sample(self, rng: np.random.Generator, n: int = 1) -> list[dict]:
        """Draw ``n`` uniform random configs."""
        return [{p.name: p.sample(rng) for p in self.params} for _ in range(n)]

    def grid(self, points_per_dim: int = 3, max_points: int | None = None) -> list[dict]:
        """Full-factorial grid, optionally truncated to ``max_points``.

        Used by the grid-search comparator; the combinatorial explosion
        this produces for Table III-sized spaces is exactly why the paper
        rejects exhaustive search.
        """
        axes = [p.grid_values(points_per_dim) for p in self.params]
        out: list[dict] = []
        for combo in itertools.product(*axes):
            out.append(dict(zip(self.names, combo, strict=True)))
            if max_points is not None and len(out) >= max_points:
                break
        return out

    def size_of_grid(self, points_per_dim: int = 3) -> int:
        """Cardinality of :meth:`grid` without materializing it."""
        n = 1
        for p in self.params:
            n *= len(p.grid_values(points_per_dim))
        return n
