"""Acquisition functions for minimization-mode Bayesian Optimization.

The paper uses *expected improvement* (Mockus 1977) — cited explicitly in
Section IV-A.  PI and LCB are included for the acquisition ablation
bench.  All functions take the GP posterior mean/std at candidate points
and return a score where **larger is better** (the BO loop maximizes the
acquisition even though the objective — validation MAPE — is minimized).
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

__all__ = [
    "expected_improvement",
    "probability_of_improvement",
    "lower_confidence_bound",
    "ACQUISITIONS",
]


def _prep(mu, sigma) -> tuple[np.ndarray, np.ndarray]:
    mu = np.asarray(mu, dtype=np.float64)
    sigma = np.asarray(sigma, dtype=np.float64)
    if mu.shape != sigma.shape:
        raise ValueError("mu and sigma must have the same shape")
    return mu, np.maximum(sigma, 1e-12)


def expected_improvement(
    mu: np.ndarray, sigma: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """EI for minimization: E[max(best - f(x) - xi, 0)].

    ``xi`` trades exploration for exploitation; the GPyOpt default of 0.01
    is kept.
    """
    mu, sigma = _prep(mu, sigma)
    imp = best - mu - xi
    z = imp / sigma
    ei = imp * norm.cdf(z) + sigma * norm.pdf(z)
    return np.maximum(ei, 0.0)


def probability_of_improvement(
    mu: np.ndarray, sigma: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """PI for minimization: P[f(x) < best - xi]."""
    mu, sigma = _prep(mu, sigma)
    return norm.cdf((best - mu - xi) / sigma)


def lower_confidence_bound(
    mu: np.ndarray, sigma: np.ndarray, best: float = 0.0, kappa: float = 2.0
) -> np.ndarray:
    """Negated LCB: maximize -(mu - kappa*sigma).  ``best`` unused (API parity)."""
    mu, sigma = _prep(mu, sigma)
    return -(mu - kappa * sigma)


#: Registry keyed by the names accepted by BayesianOptimizer.
ACQUISITIONS = {
    "ei": expected_improvement,
    "pi": probability_of_improvement,
    "lcb": lower_confidence_bound,
}


def score_candidates(
    gp,
    U: np.ndarray,
    acquisition: str,
    best: float,
    *,
    xi: float = 0.01,
    kappa: float = 2.0,
) -> np.ndarray:
    """Acquisition scores for an ``(N, D)`` candidate matrix in one shot.

    One batched GP posterior evaluation covers the whole sweep — the
    per-candidate cost is a dot product against the shared triangular
    solve, so scoring 1k candidates costs barely more than scoring one.
    This is the single entry point the BO loop (and the candidate-sweep
    acquisition optimizer) uses; per-point scoring is just ``N == 1``.
    """
    fn = ACQUISITIONS[acquisition]
    mu, sd = gp.predict(np.atleast_2d(U), return_std=True)
    if acquisition == "lcb":
        return fn(mu, sd, best, kappa=kappa)
    return fn(mu, sd, best, xi=xi)
