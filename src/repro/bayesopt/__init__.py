"""Hyperparameter-search substrate (replaces GPyOpt).

The paper's self-optimization loop (Fig. 6, steps 2–3) is Bayesian
Optimization with a Gaussian-process surrogate and the *expected
improvement* acquisition.  Section III-A also reports comparisons with
random search (similar accuracy, slower) and grid search (worse), so all
three are provided behind one ask/tell interface:

* :class:`~repro.bayesopt.space.SearchSpace` — mixed integer / float /
  categorical spaces with unit-cube encoding (Table III ranges);
* :class:`~repro.bayesopt.optimizer.BayesianOptimizer` — the BO loop;
* :class:`~repro.bayesopt.random_search.RandomSearch`;
* :class:`~repro.bayesopt.grid_search.GridSearch`.
"""

from repro.bayesopt.acquisition import (
    expected_improvement,
    lower_confidence_bound,
    probability_of_improvement,
)
from repro.bayesopt.grid_search import GridSearch
from repro.bayesopt.optimizer import BayesianOptimizer, TrialRecord
from repro.bayesopt.random_search import RandomSearch
from repro.bayesopt.space import CategoricalParam, FloatParam, IntParam, SearchSpace

__all__ = [
    "SearchSpace",
    "IntParam",
    "FloatParam",
    "CategoricalParam",
    "BayesianOptimizer",
    "RandomSearch",
    "GridSearch",
    "TrialRecord",
    "expected_improvement",
    "probability_of_improvement",
    "lower_confidence_bound",
]
