"""The Bayesian-Optimization loop (paper Fig. 6 steps 2–4).

Each iteration:

1. fit a GP regression model over (explored hyperparameter sets →
   cross-validation error) — the "database" of validated models;
2. maximize the acquisition (expected improvement by default) over the
   unit cube to propose the next, potentially-better set;
3. hand it to the caller (ask/tell) or evaluate the objective directly
   (:meth:`BayesianOptimizer.run`).

Acquisition maximization uses dense random candidates plus local
perturbations of the incumbent, followed by an L-BFGS-B polish of the
best candidate in the continuous relaxation; the decoded config is
deduplicated against history (integer rounding collapses nearby points).

Two opt-in fast paths (off by default; the default proposal stream is
pinned bit-for-bit by ``tests/test_bayesopt_fixture.py``):

- ``incremental=True`` keeps one surrogate alive across iterations and
  folds each ``tell`` into it with a rank-1 Cholesky append
  (:meth:`GaussianProcessRegressor.update`, O(n^2)), re-optimizing the
  kernel hyperparameters only every ``reopt_every`` tells instead of
  every suggestion.
- ``acq_optimizer="sweep"`` replaces the scalar L-BFGS-B polish with a
  scrambled-Sobol candidate sweep plus a batched top-k stochastic
  polish: every acquisition evaluation is one vectorized GP posterior
  call over an ``(N, D)`` matrix, never a Python-loop of per-point
  solves.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.optimize import minimize
from scipy.stats import qmc

from repro.bayesopt.acquisition import ACQUISITIONS, score_candidates
from repro.bayesopt.space import SearchSpace
from repro.gp import GaussianProcessRegressor, Matern52
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger

__all__ = [
    "BayesianOptimizer",
    "TrialRecord",
    "unpack_objective",
    "record_trial",
    "run_search",
]

logger = get_logger("bayesopt")

#: Batched-polish geometry for the "sweep" acquisition optimizer: the
#: top ``_SWEEP_TOPK`` sweep candidates are each refined with
#: ``_SWEEP_PROPOSALS`` Gaussian perturbations per round over
#: ``_SWEEP_ROUNDS`` rounds of halving step size — one vectorized GP
#: call per round instead of ~50 scalar L-BFGS-B evaluations.
_SWEEP_TOPK = 4
_SWEEP_PROPOSALS = 16
_SWEEP_ROUNDS = 3


def unpack_objective(out) -> tuple[float, dict]:
    """Normalize an objective return value.

    Objectives may return a bare float or ``(value, metadata)`` — the
    metadata dict is attached to the :class:`TrialRecord` via ``tell``.
    """
    if isinstance(out, tuple):
        value, meta = out
        return float(value), dict(meta)
    return float(out), {}


def record_trial(record: "TrialRecord", optimizer: str) -> None:
    """Per-trial telemetry shared by all search optimizers.

    Counts the trial, tracks the objective distribution, and — when an
    event sink is registered — emits one ``bo.trial`` record carrying
    the suggested config, the objective value, and whatever metadata the
    caller attached (timings, epochs run, early-stop flags, ...).
    """
    _metrics.counter("bo.trials").inc()
    _metrics.histogram("bo.objective").observe(record.value)
    if _events.enabled():
        _events.emit(
            "bo.trial",
            optimizer=optimizer,
            iteration=record.iteration,
            config=dict(record.config),
            value=record.value,
            **record.metadata,
        )


@dataclass
class TrialRecord:
    """One validated hyperparameter set and its objective value."""

    iteration: int
    config: dict
    value: float
    metadata: dict = field(default_factory=dict)


def run_search(
    optimizer,
    objective: Callable[[dict], float],
    n_iters: int,
    callback: Callable[["TrialRecord"], None] | None = None,
    n_workers: int | None = None,
) -> "TrialRecord":
    """Closed-loop ask/evaluate/tell driver shared by all optimizers.

    Serial when ``n_workers`` is ``None`` or 1 (byte-identical to the
    classic one-at-a-time loop).  Otherwise draws ``suggest_batch``
    batches and evaluates each through
    :func:`repro.parallel.parallel_map` (which itself degrades to a
    serial loop where process pools are unavailable).  Results are told
    in suggestion order, so trial records are deterministic for a
    deterministic objective either way.
    """
    from repro.parallel import effective_workers, parallel_map

    workers = 1 if n_workers is None else effective_workers(n_workers)
    remaining = n_iters
    while remaining > 0:
        try:
            if workers <= 1:
                configs = [optimizer.suggest()]
            else:
                configs = optimizer.suggest_batch(min(workers, remaining))
        except StopIteration:  # grid exhausted
            break
        if not configs:
            break
        if workers <= 1 or len(configs) < 2:
            outs = [objective(c) for c in configs]
        else:
            outs = parallel_map(
                objective, configs, n_workers=workers, chunks_per_worker=1
            )
        for config, out in zip(configs, outs, strict=True):
            value, meta = unpack_objective(out)
            record = optimizer.tell(config, value, **meta)
            if callback is not None:
                callback(record)
        remaining -= len(configs)
    return optimizer.best_record


class BayesianOptimizer:
    """GP-based minimizer over a :class:`SearchSpace`.

    Parameters
    ----------
    space:
        The hyperparameter space (Table III ranges for LoadDynamics).
    n_initial:
        Random configurations evaluated before the GP takes over (the
        workflow "starts with a randomly selected set", Fig. 6).
    acquisition:
        ``"ei"`` (paper), ``"pi"`` or ``"lcb"``.
    xi / kappa:
        Acquisition exploration parameters.
    n_candidates:
        Random candidates scored per suggestion.
    seed:
        Reproducibility seed for candidate sampling and the GP restarts.
    incremental:
        Keep one surrogate alive across iterations; each ``tell`` is a
        rank-1 Cholesky append (O(n^2)) and kernel hyperparameters are
        re-optimized only every ``reopt_every`` tells.  Off by default:
        the incremental schedule consumes the RNG stream differently
        (no per-suggest hyperopt), so it is a distinct — internally
        deterministic — search path, not a drop-in replica.
    reopt_every:
        With ``incremental``, full surrogate refits (with hyperparameter
        re-optimization) happen every this many GP-backed tells.
    acq_optimizer:
        ``"auto"`` (sweep when incremental, else polish), ``"polish"``
        (L-BFGS-B from the best candidate — the pre-perf-pass default),
        or ``"sweep"`` (Sobol sweep + batched top-k stochastic polish).
    """

    def __init__(
        self,
        space: SearchSpace,
        n_initial: int = 5,
        acquisition: str = "ei",
        xi: float = 0.01,
        kappa: float = 2.0,
        n_candidates: int = 1024,
        gp_noise: float = 1e-4,
        seed: int = 0,
        incremental: bool = False,
        reopt_every: int = 8,
        acq_optimizer: str = "auto",
    ):
        if acquisition not in ACQUISITIONS:
            raise ValueError(
                f"unknown acquisition {acquisition!r}; choose from {sorted(ACQUISITIONS)}"
            )
        if n_initial < 1:
            raise ValueError("n_initial must be >= 1")
        if acq_optimizer not in ("auto", "polish", "sweep"):
            raise ValueError(
                f"unknown acq_optimizer {acq_optimizer!r}; "
                "choose from ['auto', 'polish', 'sweep']"
            )
        if reopt_every < 1:
            raise ValueError("reopt_every must be >= 1")
        self.space = space
        self.n_initial = int(n_initial)
        self.acquisition_name = acquisition
        self.xi = float(xi)
        self.kappa = float(kappa)
        self.n_candidates = int(n_candidates)
        self.gp_noise = float(gp_noise)
        self.incremental = bool(incremental)
        self.reopt_every = int(reopt_every)
        if acq_optimizer == "auto":
            acq_optimizer = "sweep" if self.incremental else "polish"
        self.acq_optimizer = acq_optimizer
        self._rng = np.random.default_rng(seed)
        self._seed = seed
        #: Persistent surrogate (incremental mode only).  ``None`` means
        #: the next GP suggestion performs a full fit with hyperparameter
        #: optimization; a held GP is reused as long as its observation
        #: count matches the true history (constant-liar lies and
        #: external tells invalidate it).
        self._gp: GaussianProcessRegressor | None = None
        self._gp_tells = 0
        self.history: list[TrialRecord] = []
        self._X: list[np.ndarray] = []
        self._y: list[float] = []
        self._pending: dict | None = None
        self._excluded: Callable[[dict], bool] | None = None
        #: Timings of the most recent :meth:`suggest`, attached to the
        #: next :meth:`tell`'s record so every trial carries the cost of
        #: proposing it (surrogate fit + acquisition optimization).
        self._suggest_timings: dict = {}
        #: Configs suggested by an in-flight :meth:`suggest_batch` whose
        #: objective values have not been told yet; the GP dedup treats
        #: them as explored so one batch never proposes the same point
        #: twice.
        self._pending_batch: list[dict] = []
        #: Per-suggestion timing dicts queued by :meth:`suggest_batch`,
        #: consumed one per :meth:`tell` so batched trials carry their
        #: own proposal costs just like serial ones.
        self._batch_timings: deque[dict] = deque()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def n_trials(self) -> int:
        return len(self.history)

    @property
    def best_record(self) -> TrialRecord:
        """The lowest-error trial seen so far (workflow step 4)."""
        if not self.history:
            raise RuntimeError("no trials evaluated yet")
        return min(self.history, key=lambda r: r.value)

    @property
    def best_config(self) -> dict:
        return dict(self.best_record.config)

    @property
    def best_value(self) -> float:
        return self.best_record.value

    # ------------------------------------------------------------------
    # resilience hooks
    # ------------------------------------------------------------------
    def set_excluded(self, predicate: Callable[[dict], bool] | None) -> None:
        """Ban configs for which ``predicate`` is true from being suggested
        (the quarantine hook — see :class:`repro.resilience.Quarantine`)."""
        self._excluded = predicate

    def search_state(self) -> dict:
        """Serializable state needed to resume suggesting deterministically.

        ``tell`` consumes no randomness, so the state captured after
        trial *i* is exactly the state ``suggest`` for trial *i+1* will
        see — restoring it makes a resumed run bit-for-bit identical.
        """
        return {"rng": self._rng.bit_generator.state}

    def restore_search_state(self, state: dict) -> None:
        self._rng.bit_generator.state = state["rng"]
        # A resume is a natural re-optimization point: the persistent
        # surrogate's hyperparameters cannot be serialized through the
        # journal, so drop it and let the next suggestion refit fully.
        self._gp = None
        self._gp_tells = 0

    def _sample_novel(self) -> dict:
        """Uniform sample, dodging excluded configs when a ban is active."""
        config = self.space.sample(self._rng, 1)[0]
        if self._excluded is None:
            return config
        for _ in range(32):
            if not self._excluded(config):
                return config
            config = self.space.sample(self._rng, 1)[0]
        return config

    # ------------------------------------------------------------------
    # ask / tell
    # ------------------------------------------------------------------
    def suggest(self) -> dict:
        """Propose the next hyperparameter set to validate.

        If the GP surrogate cannot be fit or optimized (singular kernel
        matrix, numerical blow-up), the iteration degrades to a random
        suggestion instead of aborting the run; the degradation is
        flagged on the next trial's metadata and telemetry.
        """
        self._suggest_timings = {}
        if self.n_trials < self.n_initial or len(self._y) < 2:
            config = self._sample_novel()
        else:
            try:
                config = self._suggest_with_gp()
            except (np.linalg.LinAlgError, FloatingPointError) as exc:
                _metrics.counter("bo.surrogate_failures").inc()
                logger.warning(
                    "surrogate failed at trial %d (%s); degrading to a "
                    "random suggestion",
                    self.n_trials,
                    exc,
                )
                if _events.enabled():
                    _events.emit(
                        "bo.degraded", iteration=self.n_trials, error=str(exc)
                    )
                self._suggest_timings["degraded_suggest"] = True
                config = self._sample_novel()
        self._pending = config
        return config

    def suggest_batch(self, q: int) -> list[dict]:
        """Propose ``q`` configs to evaluate concurrently (ask/tell batch).

        Uses the *constant liar* strategy (Ginsbourger et al. 2010):
        after each suggestion the batch pretends the point was observed
        at the incumbent best value, so the next acquisition
        maximization is penalized around already-pending points and the
        batch spreads out instead of proposing q near-duplicates.  The
        lies are popped before returning — only real :meth:`tell` values
        ever enter the history.

        ``suggest_batch(1)`` is exactly :meth:`suggest`: same RNG
        stream, same proposal, no liar machinery.
        """
        if q < 1:
            raise ValueError("batch size q must be >= 1")
        self._pending_batch = []
        self._batch_timings = deque()
        if q == 1:
            return [self.suggest()]
        configs: list[dict] = []
        timings: list[dict] = []
        lie = float(np.min(self._y)) if self._y else None
        n_lies = 0
        t0 = time.perf_counter()
        try:
            for _ in range(q):
                config = self.suggest()
                timings.append(self._suggest_timings)
                self._suggest_timings = {}
                configs.append(config)
                self._pending_batch.append(config)
                if lie is not None:
                    # Temporarily record the lie so the next surrogate
                    # fit sees the pending point as explored.
                    self._X.append(self.space.to_unit(config))
                    self._y.append(lie)
                    n_lies += 1
        finally:
            if n_lies:
                del self._X[-n_lies:]
                del self._y[-n_lies:]
        self._batch_timings = deque(timings)
        _metrics.counter("bo.batches").inc()
        if _events.enabled():
            _events.emit(
                "bo.batch",
                q=q,
                iteration=self.n_trials,
                lie=lie,
                suggest_seconds=time.perf_counter() - t0,
            )
        return configs

    def tell(self, config: dict, value: float, **metadata) -> TrialRecord:
        """Record the objective value for a suggested (or external) config."""
        t0 = time.perf_counter()
        if not np.isfinite(value):
            # Failed trainings (diverged loss etc.) are recorded at a large
            # finite penalty so the GP steers away instead of crashing.
            value = 1e6
        self.space.validate(config)
        if not self._suggest_timings and self._batch_timings:
            self._suggest_timings = self._batch_timings.popleft()
        if self._suggest_timings:
            metadata = {**self._suggest_timings, **metadata}
            self._suggest_timings = {}
        if self._pending_batch:
            try:
                self._pending_batch.remove(config)
            except ValueError:
                pass
        record = TrialRecord(iteration=self.n_trials, config=dict(config), value=float(value), metadata=metadata)
        self.history.append(record)
        self._X.append(self.space.to_unit(config))
        self._y.append(float(value))
        self._pending = None
        if self.incremental:
            self._absorb_tell()
        record_trial(record, optimizer="bayesian")
        logger.debug(
            "trial %d: value=%.4g config=%s", record.iteration, record.value, record.config
        )
        _metrics.timer("bo.tell_seconds").observe(time.perf_counter() - t0)
        return record

    def _absorb_tell(self) -> None:
        """Fold the newest observation into the persistent surrogate.

        Rank-1 append when the held GP trails the history by exactly one
        observation; every ``reopt_every`` tells the GP is dropped so the
        next suggestion refits fully with hyperparameter re-optimization
        (stale lengthscales are the failure mode of naive incremental
        BO).  Any mismatch — external tells, replayed journals — also
        drops the GP rather than guessing.
        """
        gp = self._gp
        if gp is None:
            return
        if gp.n_observations != len(self._y) - 1:
            self._gp = None
            self._gp_tells = 0
            return
        if self._gp_tells + 1 >= self.reopt_every:
            self._gp = None
            self._gp_tells = 0
            return
        try:
            gp.update(self._X[-1], self._y[-1])
        except (np.linalg.LinAlgError, FloatingPointError):
            self._gp = None
            self._gp_tells = 0
            return
        self._gp_tells += 1

    # ------------------------------------------------------------------
    # the GP suggestion machinery
    # ------------------------------------------------------------------
    def _fit_surrogate(self) -> GaussianProcessRegressor:
        gp = GaussianProcessRegressor(
            kernel=Matern52(ard=True, n_dims=self.space.n_dims, lengthscale=0.3),
            noise=self.gp_noise,
            optimize=True,
            optimize_noise=True,
            n_restarts=1,
            seed=int(self._rng.integers(2**31)),
        )
        gp.fit(np.vstack(self._X), np.asarray(self._y))
        return gp

    def _surrogate(self) -> GaussianProcessRegressor:
        """The surrogate for this suggestion: fresh fit, or the persistent
        incrementally-updated GP when it is in sync with the history.

        The held GP is only valid when its observation count equals the
        true history length — constant-liar lies appended by
        :meth:`suggest_batch` inflate ``self._y``, so batched suggests
        past the first fall through to a fresh lie-aware fit (and the
        result is *not* retained, keeping the persistent GP lie-free).
        """
        if (
            self.incremental
            and self._gp is not None
            and self._gp.n_observations == len(self._y)
        ):
            _metrics.counter("bo.surrogate.reused").inc()
            return self._gp
        gp = self._fit_surrogate()
        if self.incremental and not self._pending_batch:
            self._gp = gp
            self._gp_tells = 0
        return gp

    def _acquisition_values(
        self, gp: GaussianProcessRegressor, U: np.ndarray
    ) -> np.ndarray:
        return score_candidates(
            gp,
            U,
            self.acquisition_name,
            float(np.min(self._y)),
            xi=self.xi,
            kappa=self.kappa,
        )

    def _suggest_with_gp(self) -> dict:
        t0 = time.perf_counter()
        gp = self._surrogate()
        t1 = time.perf_counter()
        self._suggest_timings["surrogate_fit_s"] = t1 - t0
        _metrics.timer("bo.surrogate_fit_seconds").observe(t1 - t0)
        try:
            if self.acq_optimizer == "sweep":
                return self._optimize_acquisition_sweep(gp)
            return self._optimize_acquisition(gp)
        finally:
            t2 = time.perf_counter()
            self._suggest_timings["acq_opt_s"] = t2 - t1
            _metrics.timer("bo.acq_opt_seconds").observe(t2 - t1)

    def _optimize_acquisition(self, gp: GaussianProcessRegressor) -> dict:
        d = self.space.n_dims

        # Candidate pool: global uniform + local Gaussian perturbations of
        # the incumbent (standard GPyOpt-style mixed strategy).
        n_local = max(1, self.n_candidates // 4)
        U_global = self._rng.uniform(size=(self.n_candidates, d))
        incumbent = self._X[int(np.argmin(self._y))]
        U_local = np.clip(
            incumbent + 0.05 * self._rng.standard_normal((n_local, d)), 0.0, 1.0
        )
        U = np.vstack([U_global, U_local])
        scores = self._acquisition_values(gp, U)
        u_best = U[int(np.argmax(scores))]

        # L-BFGS-B polish in the continuous relaxation.
        def neg_acq(u):
            return -float(self._acquisition_values(gp, u[None, :])[0])

        res = minimize(
            neg_acq,
            u_best,
            method="L-BFGS-B",
            bounds=[(0.0, 1.0)] * d,
            options={"maxiter": 50},
        )
        if np.isfinite(res.fun) and -res.fun >= float(np.max(scores)):
            u_best = res.x
        _metrics.gauge("bo.acquisition.candidates").set(
            float(U.shape[0] + res.nfev)
        )

        return self._decode_best(u_best, U, scores)

    def _optimize_acquisition_sweep(self, gp: GaussianProcessRegressor) -> dict:
        """Vectorized candidate sweep + batched top-k stochastic polish.

        All acquisition evaluations are batched GP posterior calls — no
        scalar objective loop.  The global pool is a scrambled Sobol
        sequence (seeded from the run RNG stream) when ``n_candidates``
        is a power of two, degrading to uniform sampling otherwise; it
        is joined by local Gaussian perturbations of the incumbent, as
        in the polish path.  The top ``_SWEEP_TOPK`` candidates are then
        refined jointly: each round scores ``topk x _SWEEP_PROPOSALS``
        perturbations in one GP call and halves the step size.
        """
        d = self.space.n_dims
        n_cand = self.n_candidates
        if n_cand >= 8 and (n_cand & (n_cand - 1)) == 0:
            sobol = qmc.Sobol(
                d, scramble=True, seed=int(self._rng.integers(2**31))
            )
            U_global = sobol.random(n_cand)
        else:
            U_global = self._rng.uniform(size=(n_cand, d))
        n_local = max(1, n_cand // 4)
        incumbent = self._X[int(np.argmin(self._y))]
        U_local = np.clip(
            incumbent + 0.05 * self._rng.standard_normal((n_local, d)), 0.0, 1.0
        )
        U = np.vstack([U_global, U_local])
        scores = self._acquisition_values(gp, U)
        n_scored = U.shape[0]

        k = min(_SWEEP_TOPK, len(scores))
        top = np.argsort(scores)[::-1][:k]
        centers = U[top].copy()
        center_scores = scores[top].copy()
        sigma = 0.05
        m = _SWEEP_PROPOSALS
        rows = np.arange(k)
        for _ in range(_SWEEP_ROUNDS):
            P = np.clip(
                centers[:, None, :]
                + sigma * self._rng.standard_normal((k, m, d)),
                0.0,
                1.0,
            )
            s = self._acquisition_values(gp, P.reshape(k * m, d)).reshape(k, m)
            n_scored += k * m
            best_j = np.argmax(s, axis=1)
            improved = s[rows, best_j] > center_scores
            centers[improved] = P[rows, best_j][improved]
            center_scores[improved] = s[rows, best_j][improved]
            sigma *= 0.5
        u_best = centers[int(np.argmax(center_scores))]
        _metrics.gauge("bo.acquisition.candidates").set(float(n_scored))

        return self._decode_best(u_best, U, scores)

    def _decode_best(
        self, u_best: np.ndarray, U: np.ndarray, scores: np.ndarray
    ) -> dict:
        """Decode the winning unit-cube point, dodging explored configs."""
        config = self.space.from_unit(u_best)
        if self._is_duplicate(config):
            # Integer rounding collapsed onto an explored point; fall back
            # to the best *novel* candidate, then to random.
            order = np.argsort(scores)[::-1]
            for idx in order[: min(64, len(order))]:
                cand = self.space.from_unit(U[idx])
                if not self._is_duplicate(cand):
                    return cand
            return self._sample_novel()
        return config

    def _is_duplicate(self, config: dict) -> bool:
        if self._excluded is not None and self._excluded(config):
            return True
        if any(p == config for p in self._pending_batch):
            return True
        return any(r.config == config for r in self.history)

    # ------------------------------------------------------------------
    # closed-loop driver
    # ------------------------------------------------------------------
    def run(
        self,
        objective: Callable[[dict], float],
        n_iters: int,
        callback: Callable[[TrialRecord], None] | None = None,
        n_workers: int | None = None,
    ) -> TrialRecord:
        """Evaluate ``objective`` for ``n_iters`` iterations; return the best.

        ``n_iters`` is the paper's ``maxIters`` (100 in their runs).
        The objective may return a bare value or ``(value, metadata)``;
        metadata lands on the :class:`TrialRecord`.

        With ``n_workers`` > 1, iterations are grouped into
        constant-liar batches (:meth:`suggest_batch`) evaluated through
        :func:`repro.parallel.parallel_map`; the objective must then be
        picklable.  Results are told in suggestion order, so the trial
        history ordering is deterministic.
        """
        if n_iters < 1:
            raise ValueError("n_iters must be >= 1")
        return run_search(self, objective, n_iters, callback, n_workers)
