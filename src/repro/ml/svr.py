"""Support-vector regression: linear and RBF-kernel variants.

CloudInsight's pool includes "Linear and Gaussian SVMs" for regression
(paper Table II).  We solve the *primal* with a smoothed
epsilon-insensitive loss

    L_eps(r) ≈ sqrt((|r| - eps)_+^2 + beta^2) - beta

via L-BFGS-B, which converges quickly at the few-hundred-sample scale of
walk-forward workload windows and avoids implementing a full SMO QP.
The kernel variant parameterizes f(x) = sum_i alpha_i k(x_i, x) and
regularizes ||f||^2_H = alpha^T K alpha (a representer-theorem primal).
Inputs and targets are standardized internally.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

__all__ = ["LinearSVR", "KernelSVR"]


def _check_xy(X, y) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    if X.ndim == 1:
        X = X[:, None]
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y length mismatch")
    if X.shape[0] == 0:
        raise ValueError("cannot fit on empty data")
    return X, y


def _smooth_eps_loss(r: np.ndarray, eps: float, beta: float = 1e-3):
    """Smoothed epsilon-insensitive loss value and d/dr."""
    excess = np.maximum(np.abs(r) - eps, 0.0)
    root = np.sqrt(excess * excess + beta * beta)
    loss = root - beta
    # d loss / d r  = excess/root * sign(r) where |r|>eps, else 0
    grad = np.where(np.abs(r) > eps, excess / root * np.sign(r), 0.0)
    return loss, grad


class _Standardizer:
    """Column-wise standardization shared by both SVR variants."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self.x_mean = X.mean(axis=0)
        self.x_std = np.where(X.std(axis=0) > 1e-12, X.std(axis=0), 1.0)
        self.y_mean = float(y.mean())
        self.y_std = float(y.std()) or 1.0

    def x(self, X: np.ndarray) -> np.ndarray:
        return (X - self.x_mean) / self.x_std

    def y(self, y: np.ndarray) -> np.ndarray:
        return (y - self.y_mean) / self.y_std

    def y_inv(self, y: np.ndarray) -> np.ndarray:
        return y * self.y_std + self.y_mean


class LinearSVR:
    """Primal linear epsilon-SVR: min C * sum L_eps + 0.5 ||w||^2."""

    def __init__(self, C: float = 1.0, epsilon: float = 0.1, max_iter: int = 200):
        if C <= 0:
            raise ValueError("C must be positive")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.C = float(C)
        self.epsilon = float(epsilon)
        self.max_iter = int(max_iter)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "LinearSVR":
        X, y = _check_xy(X, y)
        self._std = _Standardizer()
        self._std.fit(X, y)
        Xs, ys = self._std.x(X), self._std.y(y)
        n, d = Xs.shape

        def objective(wb):
            w, b = wb[:d], wb[d]
            r = Xs @ w + b - ys
            loss, dr = _smooth_eps_loss(r, self.epsilon)
            value = self.C * float(np.sum(loss)) + 0.5 * float(w @ w)
            gw = self.C * (Xs.T @ dr) + w
            gb = self.C * float(np.sum(dr))
            return value, np.concatenate([gw, [gb]])

        res = minimize(
            objective,
            np.zeros(d + 1),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.coef_ = res.x[:d]
        self.intercept_ = float(res.x[d])
        return self

    def predict(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("call fit() first")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        Xs = self._std.x(X)
        return self._std.y_inv(Xs @ self.coef_ + self.intercept_)


class KernelSVR:
    """RBF-kernel epsilon-SVR in the representer primal.

    min_alpha  C * sum L_eps(K alpha + b - y) + 0.5 alpha^T K alpha

    ``gamma=None`` uses the median-distance heuristic.  Training cost is
    O(n^2) memory for K; ``max_samples`` subsamples longer histories
    (uniform tail-biased) to keep walk-forward evaluation tractable.
    """

    def __init__(
        self,
        C: float = 1.0,
        epsilon: float = 0.1,
        gamma: float | None = None,
        max_iter: int = 200,
        max_samples: int = 400,
        seed: int = 0,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        self.C = float(C)
        self.epsilon = float(epsilon)
        self.gamma = gamma
        self.max_iter = int(max_iter)
        self.max_samples = int(max_samples)
        self.seed = int(seed)
        self.alpha_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def _kernel(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        aa = np.sum(A * A, axis=1)[:, None]
        bb = np.sum(B * B, axis=1)[None, :]
        d2 = np.maximum(aa + bb - 2.0 * (A @ B.T), 0.0)
        return np.exp(-self._gamma_val * d2)

    def fit(self, X, y) -> "KernelSVR":
        X, y = _check_xy(X, y)
        if X.shape[0] > self.max_samples:
            # Keep the most recent samples — workload patterns drift, so
            # the tail matters most for one-step-ahead forecasting.
            X, y = X[-self.max_samples :], y[-self.max_samples :]
        self._std = _Standardizer()
        self._std.fit(X, y)
        Xs, ys = self._std.x(X), self._std.y(y)
        n = Xs.shape[0]

        if self.gamma is None:
            # Median pairwise squared distance heuristic.
            rng = np.random.default_rng(self.seed)
            m = min(n, 200)
            idx = rng.choice(n, size=m, replace=False)
            A = Xs[idx]
            d2 = (
                np.sum(A * A, axis=1)[:, None]
                + np.sum(A * A, axis=1)[None, :]
                - 2.0 * (A @ A.T)
            )
            med = float(np.median(d2[d2 > 1e-12])) if np.any(d2 > 1e-12) else 1.0
            self._gamma_val = 1.0 / max(med, 1e-12)
        else:
            self._gamma_val = float(self.gamma)

        K = self._kernel(Xs, Xs)
        K_reg = K + 1e-8 * np.eye(n)

        def objective(ab):
            alpha, b = ab[:n], ab[n]
            f = K @ alpha + b
            r = f - ys
            loss, dr = _smooth_eps_loss(r, self.epsilon)
            Ka = K_reg @ alpha
            value = self.C * float(np.sum(loss)) + 0.5 * float(alpha @ Ka)
            ga = self.C * (K @ dr) + Ka
            gb = self.C * float(np.sum(dr))
            return value, np.concatenate([ga, [gb]])

        res = minimize(
            objective,
            np.zeros(n + 1),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.alpha_ = res.x[:n]
        self.intercept_ = float(res.x[n])
        self._X_train = Xs
        return self

    def predict(self, X) -> np.ndarray:
        if self.alpha_ is None:
            raise RuntimeError("call fit() first")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        Xs = self._std.x(X)
        f = self._kernel(Xs, self._X_train) @ self.alpha_ + self.intercept_
        return self._std.y_inv(f)
