"""k-nearest-neighbour regression (CloudInsight's second naive predictor).

Brute-force Euclidean search, vectorized as one GEMM-based distance
computation per query batch — at workload-history scale (10^3–10^4
samples, <10^2 features) this beats any tree index in practice.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KNNRegressor"]


class KNNRegressor:
    """Average of the k nearest training targets.

    ``weights="distance"`` weights neighbours by inverse distance, which
    helps when workload windows recur at slightly different magnitudes.
    """

    def __init__(self, k: int = 5, weights: str = "uniform"):
        if k < 1:
            raise ValueError("k must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.k = int(k)
        self.weights = weights
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X, y) -> "KNNRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim == 1:
            X = X[:, None]
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y length mismatch")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        self._X, self._y = X, y
        return self

    def predict(self, X) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("call fit() first")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        k = min(self.k, self._X.shape[0])
        # Squared distances via the (a-b)^2 expansion: one GEMM.
        aa = np.sum(X * X, axis=1)[:, None]
        bb = np.sum(self._X * self._X, axis=1)[None, :]
        d2 = np.maximum(aa + bb - 2.0 * (X @ self._X.T), 0.0)
        idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
        rows = np.arange(X.shape[0])[:, None]
        if self.weights == "uniform":
            return self._y[idx].mean(axis=1)
        w = 1.0 / (np.sqrt(d2[rows, idx]) + 1e-12)
        return np.sum(w * self._y[idx], axis=1) / np.sum(w, axis=1)
