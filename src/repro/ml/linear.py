"""Linear models: OLS, ridge, and Huber-robust regression.

:class:`HuberRegressor` is the core of the Wood et al. baseline —
"robust linear regression ... refined online to adapt with changes"
(paper Section IV-A).  It uses iteratively-reweighted least squares with
Huber weights, the classic M-estimation scheme, so isolated workload
spikes do not drag the fit the way they would with OLS.

All solvers go through ``scipy.linalg.lstsq``-equivalent normal-equation
solves with explicit regularization rather than matrix inversion (the
"never invert, solve" rule from the HPC guides).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import lstsq

__all__ = ["LinearRegression", "RidgeRegression", "HuberRegressor"]


def _design(X: np.ndarray, intercept: bool) -> np.ndarray:
    if intercept:
        return np.hstack([X, np.ones((X.shape[0], 1))])
    return X


def _check_xy(X, y) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    if X.ndim == 1:
        X = X[:, None]
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y length mismatch")
    if X.shape[0] == 0:
        raise ValueError("cannot fit on empty data")
    return X, y


class LinearRegression:
    """Ordinary least squares with optional intercept."""

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = bool(fit_intercept)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "LinearRegression":
        X, y = _check_xy(X, y)
        A = _design(X, self.fit_intercept)
        beta, *_ = lstsq(A, y, lapack_driver="gelsd")
        if self.fit_intercept:
            self.coef_ = beta[:-1]
            self.intercept_ = float(beta[-1])
        else:
            self.coef_ = beta
            self.intercept_ = 0.0
        return self

    def predict(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("call fit() first")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        return X @ self.coef_ + self.intercept_


class RidgeRegression:
    """L2-regularized least squares (used to stabilize tiny windows)."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        self.alpha = float(alpha)
        self.fit_intercept = bool(fit_intercept)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y) -> "RidgeRegression":
        X, y = _check_xy(X, y)
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xc, yc = X - x_mean, y - y_mean
        else:
            x_mean, y_mean = np.zeros(X.shape[1]), 0.0
            Xc, yc = X, y
        d = Xc.shape[1]
        # Solve (X^T X + aI) w = X^T y — small d, so the normal equations
        # are fine and much faster than an SVD of the tall matrix.
        A = Xc.T @ Xc + self.alpha * np.eye(d)
        b = Xc.T @ yc
        self.coef_ = np.linalg.solve(A, b)
        self.intercept_ = y_mean - float(x_mean @ self.coef_)
        return self

    def predict(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("call fit() first")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        return X @ self.coef_ + self.intercept_


class HuberRegressor:
    """Robust linear regression via IRLS with Huber weights.

    Residuals within ``delta`` scaled median-absolute-deviations get
    weight 1; larger ones are down-weighted as delta/|r|.  Converges in a
    handful of reweighting rounds for workload-sized problems.
    """

    def __init__(
        self,
        delta: float = 1.345,
        max_iter: int = 50,
        tol: float = 1e-8,
        fit_intercept: bool = True,
        ridge: float = 1e-8,
    ):
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = float(delta)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.fit_intercept = bool(fit_intercept)
        self.ridge = float(ridge)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, X, y) -> "HuberRegressor":
        X, y = _check_xy(X, y)
        A = _design(X, self.fit_intercept)
        n, d = A.shape
        beta, *_ = lstsq(A, y, lapack_driver="gelsd")  # OLS start
        eye = self.ridge * np.eye(d)
        for it in range(self.max_iter):
            r = y - A @ beta
            # Robust scale: MAD (consistent for the normal via 1.4826).
            scale = 1.4826 * float(np.median(np.abs(r - np.median(r))))
            if scale < 1e-12:
                scale = float(np.std(r)) or 1.0
            u = np.abs(r) / (self.delta * scale)
            w = np.where(u <= 1.0, 1.0, 1.0 / np.maximum(u, 1e-12))
            Aw = A * w[:, None]
            new_beta = np.linalg.solve(A.T @ Aw + eye, Aw.T @ y)
            step = float(np.max(np.abs(new_beta - beta)))
            beta = new_beta
            self.n_iter_ = it + 1
            if step < self.tol * (1.0 + float(np.max(np.abs(beta)))):
                break
        if self.fit_intercept:
            self.coef_ = beta[:-1]
            self.intercept_ = float(beta[-1])
        else:
            self.coef_ = beta
            self.intercept_ = 0.0
        return self

    def predict(self, X) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("call fit() first")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        return X @ self.coef_ + self.intercept_
