"""CART regression trees with vectorized split search.

Split selection minimizes the weighted child variance (equivalently,
maximizes variance reduction).  For each feature the candidate splits are
evaluated *simultaneously* with prefix sums over the sorted column —
O(n log n) per feature instead of O(n^2) — which is the difference
between usable and unusable pure-Python trees (the HPC guide's
"vectorize the bottleneck" rule applied to the only hot loop here).

Trees are stored in flat arrays (feature, threshold, children, value)
so prediction is an iterative array walk, not recursion over objects.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DecisionTreeRegressor"]

_LEAF = -1


class DecisionTreeRegressor:
    """Regression tree grown greedily with variance-reduction splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (``None`` = unlimited).
    min_samples_split:
        Minimum samples a node needs to be considered for splitting.
    min_samples_leaf:
        Minimum samples each child must retain.
    max_features:
        Features examined per split: ``None`` (all), an int, or a float
        fraction — the random-forest decorrelation knob.
    splitter:
        ``"best"`` (exact best threshold) or ``"random"`` (one uniform
        threshold per feature — extra-trees style).
    seed:
        RNG seed for feature subsampling / random thresholds.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | None = None,
        splitter: str = "best",
        seed: int = 0,
    ):
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        if splitter not in ("best", "random"):
            raise ValueError("splitter must be 'best' or 'random'")
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.splitter = splitter
        self.seed = int(seed)
        # Flat tree arrays, filled by fit().
        self._feature: list[int] = []
        self._threshold: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[float] = []

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self._feature)

    @property
    def depth_(self) -> int:
        """Realized depth of the fitted tree."""
        if not self._feature:
            raise RuntimeError("call fit() first")
        depths = {0: 0}
        best = 0
        for node in range(self.n_nodes):
            d = depths[node]
            best = max(best, d)
            if self._feature[node] != _LEAF:
                depths[self._left[node]] = d + 1
                depths[self._right[node]] = d + 1
        return best

    def _n_features_to_try(self, d: int) -> int:
        mf = self.max_features
        if mf is None:
            return d
        if isinstance(mf, float):
            return max(1, min(d, int(round(mf * d))))
        return max(1, min(d, int(mf)))

    # ------------------------------------------------------------------
    def fit(self, X, y) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim == 1:
            X = X[:, None]
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y length mismatch")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        self._feature, self._threshold = [], []
        self._left, self._right, self._value = [], [], []
        rng = np.random.default_rng(self.seed)
        # Iterative node expansion with an explicit stack (no recursion
        # limit concerns for deep trees on long traces).
        root_idx = self._new_node(y)
        stack = [(root_idx, np.arange(X.shape[0]), 0)]
        while stack:
            node, idx, depth = stack.pop()
            if not self._should_split(idx, y, depth):
                continue
            split = self._find_split(X, y, idx, rng)
            if split is None:
                continue
            feat, thr, mask = split
            left_idx, right_idx = idx[mask], idx[~mask]
            self._feature[node] = feat
            self._threshold[node] = thr
            li = self._new_node(y[left_idx])
            ri = self._new_node(y[right_idx])
            self._left[node] = li
            self._right[node] = ri
            stack.append((li, left_idx, depth + 1))
            stack.append((ri, right_idx, depth + 1))
        return self

    def _new_node(self, y_node: np.ndarray) -> int:
        self._feature.append(_LEAF)
        self._threshold.append(0.0)
        self._left.append(_LEAF)
        self._right.append(_LEAF)
        self._value.append(float(np.mean(y_node)))
        return len(self._feature) - 1

    def _should_split(self, idx: np.ndarray, y: np.ndarray, depth: int) -> bool:
        if idx.size < self.min_samples_split or idx.size < 2 * self.min_samples_leaf:
            return False
        if self.max_depth is not None and depth >= self.max_depth:
            return False
        yn = y[idx]
        return float(np.var(yn)) > 1e-18

    def _find_split(
        self, X: np.ndarray, y: np.ndarray, idx: np.ndarray, rng: np.random.Generator
    ):
        """Best (feature, threshold, left-mask) by variance reduction, or None."""
        d = X.shape[1]
        k = self._n_features_to_try(d)
        feats = rng.choice(d, size=k, replace=False) if k < d else np.arange(d)
        yn = y[idx]
        n = idx.size
        best_score = np.inf  # weighted child SSE; lower is better
        best: tuple[int, float, np.ndarray] | None = None
        msl = self.min_samples_leaf

        for f in feats:
            col = X[idx, f]
            if self.splitter == "random":
                lo, hi = float(col.min()), float(col.max())
                if hi <= lo:
                    continue
                thr = float(rng.uniform(lo, hi))
                mask = col <= thr
                nl = int(mask.sum())
                if nl < msl or n - nl < msl:
                    continue
                yl, yr = yn[mask], yn[~mask]
                score = yl.size * float(np.var(yl)) + yr.size * float(np.var(yr))
                if score < best_score:
                    best_score = score
                    best = (int(f), thr, mask)
                continue

            order = np.argsort(col, kind="stable")
            cs, ys = col[order], yn[order]
            # Candidate boundaries: between distinct consecutive values,
            # respecting min_samples_leaf on both sides.
            csum = np.cumsum(ys)
            csum2 = np.cumsum(ys * ys)
            total, total2 = csum[-1], csum2[-1]
            sizes_l = np.arange(1, n)  # split after position i → left size i
            valid = (cs[1:] > cs[:-1]) & (sizes_l >= msl) & (n - sizes_l >= msl)
            if not valid.any():
                continue
            sl = csum[:-1]
            sl2 = csum2[:-1]
            nl = sizes_l.astype(np.float64)
            nr = n - nl
            # SSE = sum(y^2) - (sum y)^2 / n, per side, vectorized over splits.
            sse_l = sl2 - sl * sl / nl
            sse_r = (total2 - sl2) - (total - sl) ** 2 / nr
            score_all = np.where(valid, sse_l + sse_r, np.inf)
            j = int(np.argmin(score_all))
            if score_all[j] < best_score:
                thr = 0.5 * (cs[j] + cs[j + 1])
                best_score = float(score_all[j])
                best = (int(f), float(thr), col <= thr)
        return best

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        if not self._feature:
            raise RuntimeError("call fit() first")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        feature = np.asarray(self._feature)
        threshold = np.asarray(self._threshold)
        left = np.asarray(self._left)
        right = np.asarray(self._right)
        value = np.asarray(self._value)
        # Level-synchronous batch descent: all rows walk the tree together.
        node = np.zeros(X.shape[0], dtype=np.intp)
        active = feature[node] != _LEAF
        while active.any():
            idx = np.nonzero(active)[0]
            f = feature[node[idx]]
            thr = threshold[node[idx]]
            go_left = X[idx, f] <= thr
            node[idx] = np.where(go_left, left[node[idx]], right[node[idx]])
            active[idx] = feature[node[idx]] != _LEAF
        return value[node]
