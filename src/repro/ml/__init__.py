"""From-scratch classical-ML substrate (replaces scikit-learn).

The CloudInsight baseline (paper Table II) needs six ML regressors —
linear and Gaussian SVMs, decision tree, random forest, gradient
boosting and extra trees — and the Wood et al. baseline needs robust
linear regression.  None of these ship offline, so this subpackage
implements them on numpy:

* :mod:`repro.ml.linear` — OLS, ridge, Huber-IRLS robust regression
* :mod:`repro.ml.tree` — CART regression trees (vectorized split search)
* :mod:`repro.ml.ensemble` — random forest, extra trees, gradient boosting
* :mod:`repro.ml.svr` — smoothed epsilon-insensitive linear & RBF-kernel SVR
* :mod:`repro.ml.neighbors` — k-nearest-neighbour regression

All estimators follow the familiar ``fit(X, y)`` / ``predict(X)``
protocol with float64 arrays.
"""

from repro.ml.ensemble import (
    ExtraTreesRegressor,
    GradientBoostingRegressor,
    RandomForestRegressor,
)
from repro.ml.linear import HuberRegressor, LinearRegression, RidgeRegression
from repro.ml.neighbors import KNNRegressor
from repro.ml.svr import KernelSVR, LinearSVR
from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "LinearRegression",
    "RidgeRegression",
    "HuberRegressor",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "ExtraTreesRegressor",
    "GradientBoostingRegressor",
    "LinearSVR",
    "KernelSVR",
    "KNNRegressor",
]
