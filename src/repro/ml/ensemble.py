"""Tree ensembles: random forest, extra trees, gradient boosting.

These fill three slots of CloudInsight's ML predictor category (paper
Table II).  All three are built on :class:`repro.ml.tree.DecisionTreeRegressor`:

* **RandomForest** — bootstrap rows + per-split feature subsampling,
  prediction = mean over trees;
* **ExtraTrees** — no bootstrap, random split thresholds (cheaper, more
  decorrelated);
* **GradientBoosting** — least-squares stagewise boosting of shallow
  trees with shrinkage.
"""

from __future__ import annotations

import numpy as np

from repro.ml.tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor", "ExtraTreesRegressor", "GradientBoostingRegressor"]


def _check_xy(X, y) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    if X.ndim == 1:
        X = X[:, None]
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y length mismatch")
    if X.shape[0] == 0:
        raise ValueError("cannot fit on empty data")
    return X, y


class _Bagging:
    """Shared fit/predict for averaged tree ensembles."""

    def __init__(
        self,
        n_estimators: int,
        max_depth: int | None,
        min_samples_leaf: int,
        max_features: int | float | None,
        bootstrap: bool,
        splitter: str,
        seed: int,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.bootstrap = bool(bootstrap)
        self.splitter = splitter
        self.seed = int(seed)
        self.trees_: list[DecisionTreeRegressor] = []

    def fit(self, X, y):
        X, y = _check_xy(X, y)
        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        n = X.shape[0]
        for t in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                splitter=self.splitter,
                seed=int(rng.integers(2**31)),
            )
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                tree.fit(X[idx], y[idx])
            else:
                tree.fit(X, y)
            self.trees_.append(tree)
        return self

    def predict(self, X) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("call fit() first")
        preds = np.stack([t.predict(X) for t in self.trees_])
        return preds.mean(axis=0)


class RandomForestRegressor(_Bagging):
    """Breiman-style random forest for regression."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_leaf: int = 2,
        max_features: int | float | None = 1.0 / 3.0,
        seed: int = 0,
    ):
        super().__init__(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            bootstrap=True,
            splitter="best",
            seed=seed,
        )


class ExtraTreesRegressor(_Bagging):
    """Extremely-randomized trees (random thresholds, full sample)."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_leaf: int = 2,
        max_features: int | float | None = 1.0,
        seed: int = 0,
    ):
        super().__init__(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            bootstrap=False,
            splitter="random",
            seed=seed,
        )


class GradientBoostingRegressor:
    """Least-squares gradient boosting with shallow CART learners.

    Stagewise: F_0 = mean(y); F_m = F_{m-1} + lr * tree(residuals).
    ``subsample < 1`` enables stochastic gradient boosting.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
        subsample: float = 1.0,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.subsample = float(subsample)
        self.seed = int(seed)
        self.init_: float = 0.0
        self.trees_: list[DecisionTreeRegressor] = []

    def fit(self, X, y) -> "GradientBoostingRegressor":
        X, y = _check_xy(X, y)
        rng = np.random.default_rng(self.seed)
        self.init_ = float(np.mean(y))
        self.trees_ = []
        current = np.full(y.shape, self.init_)
        n = X.shape[0]
        m = max(1, int(round(self.subsample * n)))
        for _ in range(self.n_estimators):
            residual = y - current
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=int(rng.integers(2**31)),
            )
            if m < n:
                idx = rng.choice(n, size=m, replace=False)
                tree.fit(X[idx], residual[idx])
            else:
                tree.fit(X, residual)
            current += self.learning_rate * tree.predict(X)
            self.trees_.append(tree)
        return self

    def predict(self, X) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("call fit() first")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        out = np.full(X.shape[0], self.init_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(X)
        return out

    def staged_predict(self, X):
        """Yield predictions after each boosting stage (for early-stop studies)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[:, None]
        out = np.full(X.shape[0], self.init_)
        for tree in self.trees_:
            out = out + self.learning_rate * tree.predict(X)
            yield out.copy()
