"""The :class:`ModelFamily` protocol — what "generic" means in code.

The paper claims a *generic* self-optimized prediction framework; the
outer loop (split → scale → window → suggest → train → validate → tell →
select) never needs to know what kind of model a trial trains.  A model
family packages everything that *is* family-specific:

* ``search_space`` — the hyperparameter box the optimizer explores
  (Table III for the recurrent families, regressor-specific boxes for
  the classical ones); every space must include ``history_len``, the
  one universal hyperparameter (Eq. 1 windowing).
* ``build`` / ``train`` — construct and fit one candidate model on the
  windowed training split.  ``train`` returns a
  :class:`~repro.nn.network.TrainingHistory` for epoch-based models (so
  the evaluator can detect divergence and report early stopping) or
  ``None`` for single-shot fits.
* ``hyperparameters`` — turn a config dict into the report/predictor
  hyperparameter object.
* ``wrap_predictor`` — package a winning model as a deployable
  :class:`~repro.core.predictor.LoadDynamicsPredictor`.
* ``save_model`` / ``load_model`` — the model's persistence format
  inside a saved predictor directory.

Families register themselves in :mod:`repro.models.registry`;
``LoadDynamics(family="...")`` and ``repro fit --family ...`` look them
up by name.  Layering: this package may depend on the substrate layers
(``nn``, ``ml``, ``baselines``) and on ``core`` data plumbing, but never
on ``cli`` or ``experiments`` (enforced by ``scripts/check_layering.py``).
"""

from __future__ import annotations

import abc
from pathlib import Path

import numpy as np

from repro.bayesopt.space import SearchSpace

__all__ = ["ModelFamily"]


class ModelFamily(abc.ABC):
    """One pluggable model kind behind the self-optimization loop."""

    #: Registry key (``LoadDynamics(family=name)``, CLI ``--family``).
    name: str = "family"

    #: Coarse category shown by ``repro families``: "nn", "classical",
    #: or "fallback".
    kind: str = "nn"

    # ------------------------------------------------------------------
    # search space
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def search_space(
        self,
        trace_name: str = "default",
        budget: str = "paper",
        extended: bool = False,
    ) -> SearchSpace:
        """Hyperparameter space for a trace/budget (must include
        ``history_len``).  ``extended`` adds the §V extras where the
        family supports them and is ignored otherwise."""

    # ------------------------------------------------------------------
    # trial training
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build(
        self,
        config: dict,
        settings,
        seed: int,
        n_channels: int = 1,
        target_channel: int = 0,
    ):
        """Construct a fresh, untrained model for one config.

        ``seed`` is the retry-aware weight seed chosen by the trial
        evaluator (:meth:`repro.resilience.retry.RetryPolicy.seed_for`).

        ``n_channels``/``target_channel`` describe the window tensors a
        multivariate fit will train on — ``(N, n, n_channels)`` windows
        predicting ``target_channel``.  The evaluator only passes them
        when ``n_channels > 1``, so families written before the
        multivariate pipeline (three-argument ``build``) keep working
        for every univariate fit.
        """

    @abc.abstractmethod
    def train(
        self,
        model,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: np.ndarray,
        y_val: np.ndarray,
        config: dict,
        settings,
        epochs: int,
        patience: int,
        callbacks: list,
    ):
        """Fit ``model`` on the windowed training split.

        Returns a :class:`~repro.nn.network.TrainingHistory` for
        epoch-based families (``callbacks`` receive per-epoch calls, so
        trial deadlines can interrupt training) or ``None`` for
        single-shot fits (where ``epochs``/``patience``/``callbacks``
        do not apply).  May raise the numeric failures the evaluator's
        retry policy handles (``FloatingPointError``, ``OverflowError``,
        ``numpy.linalg.LinAlgError``).
        """

    # ------------------------------------------------------------------
    # reporting / deployment
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def hyperparameters(self, config: dict):
        """Hyperparameter object (``as_dict``-able, with ``history_len``)
        for reports and predictor metadata."""

    def wrap_predictor(
        self,
        model,
        scaler,
        config: dict,
        validation_mape: float,
        target_channel: int = 0,
    ):
        """Package a trained model as a deployable predictor (step 5).

        The channel count is carried by the (per-channel) scaler;
        ``target_channel`` selects the predicted channel of a
        multivariate fit.
        """
        from repro.core.predictor import LoadDynamicsPredictor

        return LoadDynamicsPredictor(
            model=model,
            scaler=scaler,
            hyperparameters=self.hyperparameters(config),
            validation_mape=validation_mape,
            family=self.name,
            target_channel=target_channel,
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def save_model(self, model, directory: Path) -> None:
        """Persist the model's weights/state into a predictor directory."""

    @abc.abstractmethod
    def load_model(self, directory: Path):
        """Reconstruct a model previously written by :meth:`save_model`."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, kind={self.kind!r})"
