"""Recurrent model families: stacked LSTM (paper default) and GRU.

Both tune the four Table III hyperparameters (history length, cell
size, layer count, batch size) and train through
:class:`~repro.nn.network.LSTMRegressor`, which hosts either cell kind
over the same fast-path kernels.  ``lstm`` is the framework default —
its ``build``/``train`` calls are argument-for-argument identical to
the pre-refactor monolith, which is what keeps seeded default-path fits
bit-for-bit reproducible (regression-tested in
``tests/test_equivalence.py``).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.bayesopt.space import SearchSpace
from repro.core.config import LSTMHyperparameters, search_space_for
from repro.models.base import ModelFamily
from repro.nn.network import LSTMRegressor
from repro.nn.serialization import load_regressor, save_regressor

__all__ = ["LSTMFamily", "GRUFamily"]


class _RecurrentFamily(ModelFamily):
    """Shared plumbing for the LSTM/GRU cell kinds."""

    kind = "nn"
    cell = "lstm"

    def search_space(
        self,
        trace_name: str = "default",
        budget: str = "paper",
        extended: bool = False,
    ) -> SearchSpace:
        # Table III, identically for both cell kinds (the paper tunes the
        # same four hyperparameters regardless of the recurrent cell).
        return search_space_for(trace_name, budget, extended=extended)

    def build(
        self,
        config: dict,
        settings,
        seed: int,
        n_channels: int = 1,
        target_channel: int = 0,
    ) -> LSTMRegressor:
        # Multichannel windows feed the first layer's input projection
        # directly (input_size=D); the target channel is encoded in the
        # training labels, not the model.  For n_channels == 1 this is
        # argument-for-argument the pre-multivariate construction.
        return LSTMRegressor(
            hidden_size=int(config["cell_size"]),
            num_layers=int(config["num_layers"]),
            input_size=int(n_channels),
            seed=seed,
            cell=self.cell,
        )

    def train(
        self,
        model: LSTMRegressor,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: np.ndarray,
        y_val: np.ndarray,
        config: dict,
        settings,
        epochs: int,
        patience: int,
        callbacks: list,
    ):
        return model.fit(
            X_train,
            y_train,
            epochs=epochs,
            batch_size=int(config["batch_size"]),
            lr=settings.lr,
            # Extended spaces (Section V) tune these; plain Table III
            # spaces fall back to the fixed settings.
            optimizer=str(config.get("optimizer", settings.optimizer)),
            loss=str(config.get("loss", settings.loss)),
            clip_norm=settings.clip_norm,
            validation=(X_val, y_val),
            patience=patience,
            callbacks=callbacks,
        )

    def hyperparameters(self, config: dict) -> LSTMHyperparameters:
        return LSTMHyperparameters.from_dict(config)

    def save_model(self, model: LSTMRegressor, directory: Path) -> None:
        save_regressor(model, directory / "model.npz")

    def load_model(self, directory: Path) -> LSTMRegressor:
        return load_regressor(directory / "model.npz")


class LSTMFamily(_RecurrentFamily):
    """The paper's stacked-LSTM family (framework default)."""

    name = "lstm"
    cell = "lstm"


class GRUFamily(_RecurrentFamily):
    """GRU variant: 3 gates instead of 4, same search space."""

    name = "gru"
    cell = "gru"
