"""Pluggable model families behind the self-optimization loop.

The paper's framework is *generic*: the Fig. 6 outer loop (suggest →
train → validate → tell → select) does not care what kind of model a
trial trains.  This package makes that real — a
:class:`~repro.models.base.ModelFamily` bundles a family's search
space, trial training, predictor packaging, and persistence behind one
protocol, and a registry resolves families by name for
``LoadDynamics(family=...)`` and ``repro fit --family``.

Built-in families:

========  =========  ====================================================
name      kind       model
========  =========  ====================================================
lstm      nn         stacked LSTM (paper default, Table III space)
gru       nn         stacked GRU, same Table III space
gbr       classical  gradient-boosted CART trees over lag windows
svr       classical  RBF-kernel epsilon-SVR over lag windows
naive     fallback   last-value persistence (graceful degradation)
========  =========  ====================================================

Adding a family: subclass :class:`ModelFamily`, implement the protocol,
and call :func:`register_family` — see DESIGN.md §9 for a walkthrough.
"""

from repro.models.base import ModelFamily
from repro.models.classical import GBRFamily, SVRFamily
from repro.models.naive import NaiveFamily
from repro.models.nn import GRUFamily, LSTMFamily
from repro.models.registry import get_family, list_families, register_family

__all__ = [
    "ModelFamily",
    "LSTMFamily",
    "GRUFamily",
    "GBRFamily",
    "SVRFamily",
    "NaiveFamily",
    "register_family",
    "get_family",
    "list_families",
]

for _family in (LSTMFamily(), GRUFamily(), GBRFamily(), SVRFamily(), NaiveFamily()):
    register_family(_family)
del _family
