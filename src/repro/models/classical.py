"""Classical (non-NN) model families over the :mod:`repro.ml` substrate.

The same windowed supervised framing the LSTM uses (Eq. 1: length-n
window → next value) works for any ``fit/predict`` regressor — this is
how CloudInsight's model pool and the ML baselines already consume the
data.  These families put two representative regressors behind the
self-optimization loop:

* ``gbr`` — gradient-boosted CART trees; tunes history length, number
  of stages, tree depth, and learning rate;
* ``svr`` — RBF-kernel support-vector regression; tunes history
  length, the loss weight ``C``, and the epsilon tube.

Training is single-shot (no epochs), so ``train`` returns ``None`` and
the evaluator skips the per-epoch divergence/early-stop bookkeeping;
the retry-with-reseed and deadline machinery still applies where it
can (a reseed changes the boosting subsample / gamma-heuristic draws).

Persistence uses the stdlib :mod:`pickle` — predictor directories are
local artifacts written by this framework, not untrusted input.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import numpy as np

from repro.bayesopt.space import FloatParam, IntParam, SearchSpace
from repro.core.config import GenericHyperparameters, history_range
from repro.ml import GradientBoostingRegressor, KernelSVR
from repro.models.base import ModelFamily

__all__ = ["GBRFamily", "SVRFamily", "FlattenedLagRegressor"]

_MODEL_FILE = "model.pkl"


class FlattenedLagRegressor:
    """Flattened-lag adapter: (N, n, D) windows → (N, n*D) features.

    Classical regressors consume flat feature vectors, so a multivariate
    window is presented as its per-timestep channel blocks concatenated
    in time order (the 2-D reshape of the window tensor).  Univariate
    fits never construct this wrapper — their (N, n) windows reach the
    regressor untouched, exactly as before.  Module-level so pickled
    predictor directories round-trip.
    """

    def __init__(self, regressor):
        self.regressor = regressor

    @staticmethod
    def _flatten(X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 3:
            return X.reshape(X.shape[0], -1)
        return X

    def fit(self, X: np.ndarray, y: np.ndarray):
        self.regressor.fit(self._flatten(X), y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.regressor.predict(self._flatten(X))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlattenedLagRegressor({self.regressor!r})"


class _WindowedRegressorFamily(ModelFamily):
    """Shared plumbing for single-shot windowed regressors."""

    kind = "classical"

    def _maybe_flatten(self, model, n_channels: int):
        """Wrap a freshly built regressor for multivariate windows."""
        if int(n_channels) > 1:
            return FlattenedLagRegressor(model)
        return model

    def train(
        self,
        model,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: np.ndarray,
        y_val: np.ndarray,
        config: dict,
        settings,
        epochs: int,
        patience: int,
        callbacks: list,
    ):
        # Single-shot fit: epochs/patience/callbacks are epoch-loop
        # concepts and do not apply.
        model.fit(X_train, y_train)
        return None

    def hyperparameters(self, config: dict) -> GenericHyperparameters:
        return GenericHyperparameters.from_dict(config)

    def save_model(self, model, directory: Path) -> None:
        (directory / _MODEL_FILE).write_bytes(pickle.dumps(model))

    def load_model(self, directory: Path):
        return pickle.loads((directory / _MODEL_FILE).read_bytes())


class GBRFamily(_WindowedRegressorFamily):
    """Gradient-boosted regression trees over lag windows."""

    name = "gbr"

    def search_space(
        self,
        trace_name: str = "default",
        budget: str = "paper",
        extended: bool = False,
    ) -> SearchSpace:
        hist = history_range(trace_name, budget)
        estimators = {"paper": (50, 400), "reduced": (20, 120), "tiny": (5, 20)}[budget]
        depth = {"paper": (2, 6), "reduced": (2, 4), "tiny": (1, 3)}[budget]
        return SearchSpace(
            [
                IntParam("history_len", *hist, log=True),
                IntParam("n_estimators", *estimators, log=True),
                IntParam("max_depth", *depth),
                FloatParam("learning_rate", 0.02, 0.3, log=True),
            ]
        )

    def build(
        self,
        config: dict,
        settings,
        seed: int,
        n_channels: int = 1,
        target_channel: int = 0,
    ) -> GradientBoostingRegressor:
        model = GradientBoostingRegressor(
            n_estimators=int(config["n_estimators"]),
            learning_rate=float(config["learning_rate"]),
            max_depth=int(config["max_depth"]),
            subsample=0.8,
            seed=seed,
        )
        return self._maybe_flatten(model, n_channels)


class SVRFamily(_WindowedRegressorFamily):
    """RBF-kernel epsilon-SVR over lag windows."""

    name = "svr"

    def search_space(
        self,
        trace_name: str = "default",
        budget: str = "paper",
        extended: bool = False,
    ) -> SearchSpace:
        hist = history_range(trace_name, budget)
        c_high = {"paper": 100.0, "reduced": 10.0, "tiny": 10.0}[budget]
        return SearchSpace(
            [
                IntParam("history_len", *hist, log=True),
                FloatParam("C", 0.1, c_high, log=True),
                FloatParam("epsilon", 1e-3, 0.2, log=True),
            ]
        )

    def build(
        self,
        config: dict,
        settings,
        seed: int,
        n_channels: int = 1,
        target_channel: int = 0,
    ) -> KernelSVR:
        model = KernelSVR(
            C=float(config["C"]),
            epsilon=float(config["epsilon"]),
            seed=seed,
        )
        return self._maybe_flatten(model, n_channels)
