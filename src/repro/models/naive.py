"""The fallback family: last-value persistence.

Backs the graceful-degradation path — when every trial of a fit is
infeasible, :meth:`repro.core.framework.LoadDynamics.fit` returns a
:class:`~repro.core.predictor.NaiveLastValueModel` predictor tagged
with this family, which also makes degraded predictors *persistable*
(the model has no weights; its save format is a marker file).  It is
registered like any other family, so a degraded predictor directory
round-trips through the same ``save``/``load`` machinery.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.bayesopt.space import IntParam, SearchSpace
from repro.core.config import LSTMHyperparameters
from repro.core.predictor import NaiveLastValueModel
from repro.models.base import ModelFamily

__all__ = ["NaiveFamily"]

_MODEL_FILE = "model.json"


class NaiveFamily(ModelFamily):
    """Persistence (last value) as a degenerate one-point family."""

    name = "naive"
    kind = "fallback"

    def search_space(
        self,
        trace_name: str = "default",
        budget: str = "paper",
        extended: bool = False,
    ) -> SearchSpace:
        # One point: there is nothing to optimize about persistence.
        return SearchSpace([IntParam("history_len", 1, 1)])

    def build(
        self,
        config: dict,
        settings,
        seed: int,
        n_channels: int = 1,
        target_channel: int = 0,
    ) -> NaiveLastValueModel:
        return NaiveLastValueModel(target_channel=target_channel)

    def train(
        self,
        model: NaiveLastValueModel,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: np.ndarray,
        y_val: np.ndarray,
        config: dict,
        settings,
        epochs: int,
        patience: int,
        callbacks: list,
    ):
        return None  # nothing to train

    def hyperparameters(self, config: dict) -> LSTMHyperparameters:
        # Degraded predictors carry the degenerate LSTM-shaped
        # hyperparameters the framework has always reported.
        d = {"history_len": 1, "cell_size": 1, "num_layers": 1, "batch_size": 1}
        d.update(config)
        return LSTMHyperparameters.from_dict(d)

    def save_model(self, model: NaiveLastValueModel, directory: Path) -> None:
        target = int(getattr(model, "target_channel", 0))
        (directory / _MODEL_FILE).write_text(
            '{"type": "naive-last-value", "target_channel": %d}\n' % target
        )

    def load_model(self, directory: Path) -> NaiveLastValueModel:
        meta = json.loads((directory / _MODEL_FILE).read_text())
        return NaiveLastValueModel(target_channel=int(meta.get("target_channel", 0)))
