"""Name → :class:`~repro.models.base.ModelFamily` registry.

``LoadDynamics(family="gru")``, ``repro fit --family gbr``, and
predictor loading all resolve families here.  The built-in families are
registered by :mod:`repro.models` at import time; external code can
register additional families before fitting.
"""

from __future__ import annotations

from repro.models.base import ModelFamily

__all__ = ["register_family", "get_family", "list_families"]

_REGISTRY: dict[str, ModelFamily] = {}


def register_family(family: ModelFamily) -> ModelFamily:
    """Register a family instance under its ``name`` (last wins)."""
    if not isinstance(family, ModelFamily):
        raise TypeError(f"expected a ModelFamily instance, got {family!r}")
    _REGISTRY[family.name] = family
    return family


def get_family(family: str | ModelFamily) -> ModelFamily:
    """Resolve a family by name (instances pass through unchanged)."""
    if isinstance(family, ModelFamily):
        return family
    try:
        return _REGISTRY[family]
    except KeyError:
        raise ValueError(
            f"unknown model family {family!r}; registered: {list_families()}"
        ) from None


def list_families() -> list[str]:
    """Registered family names, in registration order."""
    return list(_REGISTRY)
