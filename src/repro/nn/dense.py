"""Fully-connected layer — the output head ``T`` of paper Fig. 3.

Maps the last hidden state ``h_{i-1}`` of the top LSTM layer to the
scalar prediction ``P_i``.  Linear by default (regression head); an
optional ReLU makes it usable as a generic hidden layer in extensions.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import drelu_from_x, relu
from repro.nn.initializers import glorot_uniform

__all__ = ["DenseLayer"]


class DenseLayer:
    """``y = act(x @ W + b)`` over (B, D) inputs."""

    def __init__(
        self,
        input_size: int,
        output_size: int,
        rng: np.random.Generator,
        activation: str = "linear",
    ):
        if input_size <= 0 or output_size <= 0:
            raise ValueError("input_size and output_size must be positive")
        if activation not in ("linear", "relu"):
            raise ValueError(f"unsupported activation {activation!r}")
        self.input_size = int(input_size)
        self.output_size = int(output_size)
        self.activation = activation
        self.W = glorot_uniform(rng, input_size, output_size, (input_size, output_size))
        self.b = np.zeros(output_size)
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def params(self) -> list[np.ndarray]:
        return [self.W, self.b]

    def n_params(self) -> int:
        return self.W.size + self.b.size

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward a (B, D) batch; caches intermediates for backward."""
        if x.ndim != 2 or x.shape[1] != self.input_size:
            raise ValueError(
                f"expected (batch, {self.input_size}) input, got {x.shape}"
            )
        z = x @ self.W + self.b
        self._cache = (x, z)
        return relu(z) if self.activation == "relu" else z

    def backward(self, d_out: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Backprop d(loss)/d(output); returns (dx, [dW, db])."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, z = self._cache
        dz = d_out * drelu_from_x(z) if self.activation == "relu" else d_out
        dW = x.T @ dz
        db = dz.sum(axis=0)
        dx = dz @ self.W.T
        return dx, [dW, db]
