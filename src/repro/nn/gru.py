"""GRU layer — the LSTM-variant ablation cell.

The paper's related work (Section VI) groups several deep predictors as
"LSTM or LSTM-variants"; the gated recurrent unit (Cho et al. 2014) is
the canonical variant with one fewer gate and no separate cell memory:

    z_t = sigmoid(W_z x_t + U_z h_{t-1} + b_z)        (update gate)
    r_t = sigmoid(W_r x_t + U_r h_{t-1} + b_r)        (reset gate)
    g_t = tanh  (W_g x_t + U_g (r_t ⊙ h_{t-1}) + b_g) (candidate)
    h_t = (1 - z_t) ⊙ h_{t-1} + z_t ⊙ g_t

Same vectorization strategy as :class:`repro.nn.lstm.LSTMLayer`: gates
packed ``[z, r, g]`` into single kernels (two GEMMs per step), batch
dimension fully vectorized, full backpropagation through time.  Swapping
this cell into :class:`~repro.nn.network.LSTMRegressor` (``cell="gru"``)
gives the architecture ablation bench its comparison point.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import dsigmoid_from_y, dtanh_from_y, sigmoid
from repro.nn.initializers import glorot_uniform, orthogonal
from repro.nn.lstm import _sigmoid_inplace

__all__ = ["GRULayer", "GRUCache"]


class _GRUScratch:
    """Preallocated buffers for :meth:`GRULayer.forward_inference`.

    Mirrors ``repro.nn.lstm._LSTMScratch``: sized per (B, T) batch
    shape, reused across batches, gate activations in place on slices of
    the (B, 2H) update/reset pre-activation block.  ``Uzr``/``Ug`` hold
    contiguous copies of the packed recurrent-kernel slices, refreshed
    every call so in-place weight updates can never go stale.
    """

    __slots__ = ("B", "T", "xw", "xw_tm", "hu", "z", "r", "rh", "g", "tmp",
                 "h_prev", "out", "Uzr", "Ug")

    def __init__(self, B: int, T: int, H: int):
        self.B, self.T = B, T
        self.xw = np.empty((B * T, 3 * H))
        # Time-major staging slab for the multichannel projection;
        # allocated on first D > 1 call only (see the LSTM twin).
        self.xw_tm: np.ndarray | None = None
        self.hu = np.empty((B, 2 * H))
        self.z = self.hu[:, :H]
        self.r = self.hu[:, H:]
        self.rh = np.empty((B, H))
        self.g = np.empty((B, H))
        self.tmp = np.empty((B, H))
        self.h_prev = np.empty((B, H))
        self.out = np.empty((B, T, H))
        self.Uzr = np.empty((H, 2 * H))
        self.Ug = np.empty((H, H))


class GRUCache:
    """Forward intermediates for :meth:`GRULayer.backward`."""

    __slots__ = ("x", "z", "r", "g", "h", "h0", "rh")

    def __init__(self, x, z, r, g, h, h0, rh):
        self.x = x    # (B, T, D)
        self.z = z    # (T, B, H) update gate
        self.r = r    # (T, B, H) reset gate
        self.g = g    # (T, B, H) candidate
        self.h = h    # (T, B, H) hidden states
        self.h0 = h0  # (B, H)
        self.rh = rh  # (T, B, H) r_t ⊙ h_{t-1} (saved for U_g grads)


class GRULayer:
    """One GRU layer mapping (B, T, D) inputs to (B, T, H) hidden states."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        H = self.hidden_size
        self.W = glorot_uniform(rng, input_size, H, (input_size, 3 * H))
        self.U = np.concatenate([orthogonal(rng, H, H) for _ in range(3)], axis=1)
        self.b = np.zeros(3 * H)
        self._scratch: _GRUScratch | None = None

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_scratch"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._scratch = state.get("_scratch")

    # ------------------------------------------------------------------
    @property
    def params(self) -> list[np.ndarray]:
        return [self.W, self.U, self.b]

    def n_params(self) -> int:
        return sum(p.size for p in self.params)

    # ------------------------------------------------------------------
    def forward(
        self, x: np.ndarray, h0: np.ndarray | None = None
    ) -> tuple[np.ndarray, GRUCache]:
        if x.ndim != 3:
            raise ValueError(f"expected (batch, time, features) input, got {x.shape}")
        B, T, D = x.shape
        if D != self.input_size:
            raise ValueError(f"input feature dim {D} != layer input_size {self.input_size}")
        if T == 0:
            raise ValueError("sequence length must be positive")
        H = self.hidden_size
        h_prev = np.zeros((B, H)) if h0 is None else np.array(h0, dtype=np.float64)

        xw = x.reshape(B * T, D) @ self.W
        xw = xw.reshape(B, T, 3 * H) + self.b

        Uz = self.U[:, :H]
        Ur = self.U[:, H : 2 * H]
        Ug = self.U[:, 2 * H :]

        zs = np.empty((T, B, H))
        rs = np.empty((T, B, H))
        gs = np.empty((T, B, H))
        hs = np.empty((T, B, H))
        rhs = np.empty((T, B, H))
        h0_saved = h_prev.copy()

        for t in range(T):
            hu = h_prev @ self.U[:, : 2 * H]  # z and r recurrent parts together
            z = sigmoid(xw[:, t, :H] + hu[:, :H])
            r = sigmoid(xw[:, t, H : 2 * H] + hu[:, H:])
            rh = r * h_prev
            g = np.tanh(xw[:, t, 2 * H :] + rh @ Ug)
            h = (1.0 - z) * h_prev + z * g
            zs[t], rs[t], gs[t], hs[t], rhs[t] = z, r, g, h, rh
            h_prev = h

        cache = GRUCache(x, zs, rs, gs, hs, h0_saved, rhs)
        return np.ascontiguousarray(hs.transpose(1, 0, 2)), cache

    # ------------------------------------------------------------------
    # inference fast path
    # ------------------------------------------------------------------
    def forward_inference(
        self,
        x: np.ndarray,
        h0: np.ndarray | None = None,
        return_sequences: bool = True,
    ) -> np.ndarray:
        """Forward pass without the BPTT cache (see the LSTM twin).

        Bitwise-identical hidden sequence to :meth:`forward`, computed
        with reusable scratch buffers, in-place gate activations, and
        hidden states written directly in (B, T, H) layout.  With
        ``return_sequences=False`` only the final (B, H) hidden state is
        returned and the per-step output writes are skipped.  The return
        value is a view of layer scratch, valid until the next call;
        not thread-safe.
        """
        if x.ndim != 3:
            raise ValueError(f"expected (batch, time, features) input, got {x.shape}")
        B, T, D = x.shape
        if D != self.input_size:
            raise ValueError(f"input feature dim {D} != layer input_size {self.input_size}")
        if T == 0:
            raise ValueError("sequence length must be positive")
        H = self.hidden_size

        s = self._scratch
        if s is None or s.B != B or s.T != T:
            s = self._scratch = _GRUScratch(B, T, H)
        # Refresh the contiguous recurrent-kernel copies (step GEMMs on a
        # contiguous operand; values match the strided views exactly).
        s.Uzr[...] = self.U[:, : 2 * H]
        s.Ug[...] = self.U[:, 2 * H :]

        if D == 1:
            # Univariate hot case: x @ W with one input feature is an
            # outer product — one bulk broadcast multiply is
            # bitwise-equal to the GEMM, computed in (T, B, 3H) layout
            # so every step slice is contiguous (see the LSTM twin).
            xw = s.xw.reshape(T, B, 3 * H)
            np.multiply(x.transpose(1, 0, 2), self.W, out=xw)
            xw += self.b
        else:
            # Multichannel case: same hoisted GEMM as the cached path,
            # then a bits-preserving transpose-copy into a (T, B, 3H)
            # time-major slab so step slices are contiguous (see the
            # LSTM twin for the parity argument).
            np.matmul(np.ascontiguousarray(x).reshape(B * T, D), self.W, out=s.xw)
            if s.xw_tm is None:
                s.xw_tm = np.empty((T, B, 3 * H))
            xw = s.xw_tm
            np.copyto(xw, s.xw.reshape(B, T, 3 * H).transpose(1, 0, 2))
            xw += self.b

        if h0 is None:
            s.h_prev.fill(0.0)
        else:
            s.h_prev[...] = h0

        out = s.out
        H2 = 2 * H
        # Hoist per-step slice construction out of the loop (see LSTM);
        # both projection branches land in time-major layout.
        xts = list(xw)
        for t in range(T):
            xwt = xts[t]
            np.matmul(s.h_prev, s.Uzr, out=s.hu)  # z and r recurrent parts
            s.hu += xwt[:, :H2]
            _sigmoid_inplace(s.hu)  # z and r fused in one (B, 2H) block
            np.multiply(s.r, s.h_prev, out=s.rh)
            np.matmul(s.rh, s.Ug, out=s.g)
            s.g += xwt[:, H2:]
            np.tanh(s.g, out=s.g)
            # h_t = (1 - z) ⊙ h_{t-1} + z ⊙ g, computed in the contiguous
            # h_prev buffer then copied into the (B, T, H) output slab.
            np.subtract(1.0, s.z, out=s.tmp)
            np.multiply(s.tmp, s.h_prev, out=s.tmp)
            np.multiply(s.z, s.g, out=s.h_prev)
            s.h_prev += s.tmp
            if return_sequences:
                out[:, t, :] = s.h_prev
        return out if return_sequences else s.h_prev

    # ------------------------------------------------------------------
    def backward(
        self, d_h_seq: np.ndarray, cache: GRUCache
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        x = cache.x
        B, T, D = x.shape
        H = self.hidden_size
        if d_h_seq.shape != (B, T, H):
            raise ValueError(f"d_h_seq shape {d_h_seq.shape} != expected {(B, T, H)}")

        Uz = self.U[:, :H]
        Ur = self.U[:, H : 2 * H]
        Ug = self.U[:, 2 * H :]
        dW = np.zeros_like(self.W)
        dU = np.zeros_like(self.U)
        db = np.zeros_like(self.b)
        dz_all = np.empty((T, B, 3 * H))  # pre-activation grads [z, r, g]

        dh_next = np.zeros((B, H))
        for t in range(T - 1, -1, -1):
            z, r, g = cache.z[t], cache.r[t], cache.g[t]
            h_prev = cache.h[t - 1] if t > 0 else cache.h0
            dh = d_h_seq[:, t, :] + dh_next

            dz_gate = dh * (g - h_prev)           # d/dz of h
            dg = dh * z
            dh_prev = dh * (1.0 - z)

            da_g = dg * dtanh_from_y(g)           # pre-activation of candidate
            d_rh = da_g @ Ug.T
            dr = d_rh * h_prev
            dh_prev += d_rh * r

            da_z = dz_gate * dsigmoid_from_y(z)
            da_r = dr * dsigmoid_from_y(r)
            dh_prev += da_z @ Uz.T + da_r @ Ur.T

            dz_all[t, :, :H] = da_z
            dz_all[t, :, H : 2 * H] = da_r
            dz_all[t, :, 2 * H :] = da_g

            dU[:, :H] += h_prev.T @ da_z
            dU[:, H : 2 * H] += h_prev.T @ da_r
            dU[:, 2 * H :] += cache.rh[t].T @ da_g

            dh_next = dh_prev

        dz_flat = dz_all.transpose(1, 0, 2).reshape(B * T, 3 * H)
        dW += x.reshape(B * T, D).T @ dz_flat
        db += dz_flat.sum(axis=0)
        dx = (dz_flat @ self.W.T).reshape(B, T, D)
        return dx, [dW, dU, db]
