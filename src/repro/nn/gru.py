"""GRU layer — the LSTM-variant ablation cell.

The paper's related work (Section VI) groups several deep predictors as
"LSTM or LSTM-variants"; the gated recurrent unit (Cho et al. 2014) is
the canonical variant with one fewer gate and no separate cell memory:

    z_t = sigmoid(W_z x_t + U_z h_{t-1} + b_z)        (update gate)
    r_t = sigmoid(W_r x_t + U_r h_{t-1} + b_r)        (reset gate)
    g_t = tanh  (W_g x_t + U_g (r_t ⊙ h_{t-1}) + b_g) (candidate)
    h_t = (1 - z_t) ⊙ h_{t-1} + z_t ⊙ g_t

Same vectorization strategy as :class:`repro.nn.lstm.LSTMLayer`: gates
packed ``[z, r, g]`` into single kernels (two GEMMs per step), batch
dimension fully vectorized, full backpropagation through time.  Swapping
this cell into :class:`~repro.nn.network.LSTMRegressor` (``cell="gru"``)
gives the architecture ablation bench its comparison point.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import dsigmoid_from_y, dtanh_from_y, sigmoid
from repro.nn.initializers import glorot_uniform, orthogonal

__all__ = ["GRULayer", "GRUCache"]


class GRUCache:
    """Forward intermediates for :meth:`GRULayer.backward`."""

    __slots__ = ("x", "z", "r", "g", "h", "h0", "rh")

    def __init__(self, x, z, r, g, h, h0, rh):
        self.x = x    # (B, T, D)
        self.z = z    # (T, B, H) update gate
        self.r = r    # (T, B, H) reset gate
        self.g = g    # (T, B, H) candidate
        self.h = h    # (T, B, H) hidden states
        self.h0 = h0  # (B, H)
        self.rh = rh  # (T, B, H) r_t ⊙ h_{t-1} (saved for U_g grads)


class GRULayer:
    """One GRU layer mapping (B, T, D) inputs to (B, T, H) hidden states."""

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        H = self.hidden_size
        self.W = glorot_uniform(rng, input_size, H, (input_size, 3 * H))
        self.U = np.concatenate([orthogonal(rng, H, H) for _ in range(3)], axis=1)
        self.b = np.zeros(3 * H)

    # ------------------------------------------------------------------
    @property
    def params(self) -> list[np.ndarray]:
        return [self.W, self.U, self.b]

    def n_params(self) -> int:
        return sum(p.size for p in self.params)

    # ------------------------------------------------------------------
    def forward(
        self, x: np.ndarray, h0: np.ndarray | None = None
    ) -> tuple[np.ndarray, GRUCache]:
        if x.ndim != 3:
            raise ValueError(f"expected (batch, time, features) input, got {x.shape}")
        B, T, D = x.shape
        if D != self.input_size:
            raise ValueError(f"input feature dim {D} != layer input_size {self.input_size}")
        if T == 0:
            raise ValueError("sequence length must be positive")
        H = self.hidden_size
        h_prev = np.zeros((B, H)) if h0 is None else np.array(h0, dtype=np.float64)

        xw = x.reshape(B * T, D) @ self.W
        xw = xw.reshape(B, T, 3 * H) + self.b

        Uz = self.U[:, :H]
        Ur = self.U[:, H : 2 * H]
        Ug = self.U[:, 2 * H :]

        zs = np.empty((T, B, H))
        rs = np.empty((T, B, H))
        gs = np.empty((T, B, H))
        hs = np.empty((T, B, H))
        rhs = np.empty((T, B, H))
        h0_saved = h_prev.copy()

        for t in range(T):
            hu = h_prev @ self.U[:, : 2 * H]  # z and r recurrent parts together
            z = sigmoid(xw[:, t, :H] + hu[:, :H])
            r = sigmoid(xw[:, t, H : 2 * H] + hu[:, H:])
            rh = r * h_prev
            g = np.tanh(xw[:, t, 2 * H :] + rh @ Ug)
            h = (1.0 - z) * h_prev + z * g
            zs[t], rs[t], gs[t], hs[t], rhs[t] = z, r, g, h, rh
            h_prev = h

        cache = GRUCache(x, zs, rs, gs, hs, h0_saved, rhs)
        return np.ascontiguousarray(hs.transpose(1, 0, 2)), cache

    # ------------------------------------------------------------------
    def backward(
        self, d_h_seq: np.ndarray, cache: GRUCache
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        x = cache.x
        B, T, D = x.shape
        H = self.hidden_size
        if d_h_seq.shape != (B, T, H):
            raise ValueError(f"d_h_seq shape {d_h_seq.shape} != expected {(B, T, H)}")

        Uz = self.U[:, :H]
        Ur = self.U[:, H : 2 * H]
        Ug = self.U[:, 2 * H :]
        dW = np.zeros_like(self.W)
        dU = np.zeros_like(self.U)
        db = np.zeros_like(self.b)
        dz_all = np.empty((T, B, 3 * H))  # pre-activation grads [z, r, g]

        dh_next = np.zeros((B, H))
        for t in range(T - 1, -1, -1):
            z, r, g = cache.z[t], cache.r[t], cache.g[t]
            h_prev = cache.h[t - 1] if t > 0 else cache.h0
            dh = d_h_seq[:, t, :] + dh_next

            dz_gate = dh * (g - h_prev)           # d/dz of h
            dg = dh * z
            dh_prev = dh * (1.0 - z)

            da_g = dg * dtanh_from_y(g)           # pre-activation of candidate
            d_rh = da_g @ Ug.T
            dr = d_rh * h_prev
            dh_prev += d_rh * r

            da_z = dz_gate * dsigmoid_from_y(z)
            da_r = dr * dsigmoid_from_y(r)
            dh_prev += da_z @ Uz.T + da_r @ Ur.T

            dz_all[t, :, :H] = da_z
            dz_all[t, :, H : 2 * H] = da_r
            dz_all[t, :, 2 * H :] = da_g

            dU[:, :H] += h_prev.T @ da_z
            dU[:, H : 2 * H] += h_prev.T @ da_r
            dU[:, 2 * H :] += cache.rh[t].T @ da_g

            dh_next = dh_prev

        dz_flat = dz_all.transpose(1, 0, 2).reshape(B * T, 3 * H)
        dW += x.reshape(B * T, D).T @ dz_flat
        db += dz_flat.sum(axis=0)
        dx = (dz_flat @ self.W.T).reshape(B, T, D)
        return dx, [dW, dU, db]
