"""Weight initializers for the LSTM/dense stack.

Matches the defaults Keras would have applied to the paper's model:
Glorot-uniform input kernels, orthogonal recurrent kernels, zero biases
with the forget-gate bias set to 1 (the standard Jozefowicz et al. trick
that stabilizes early training of long-memory cells).
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "orthogonal", "lstm_bias"]


def glorot_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int, shape: tuple[int, ...]
) -> np.ndarray:
    """Glorot/Xavier uniform init: U(-a, a), a = sqrt(6 / (fan_in+fan_out))."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """Orthogonal init via QR of a Gaussian matrix.

    For non-square shapes the result has orthonormal rows (rows < cols)
    or columns (rows > cols); either keeps recurrent spectra near 1 which
    mitigates exploding/vanishing gradients in BPTT (paper Section III-A
    cites exactly this failure mode for badly-chosen history lengths).
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    n = max(rows, cols)
    a = rng.standard_normal((n, n))
    q, r = np.linalg.qr(a)
    # Sign-fix so the distribution is uniform over the orthogonal group.
    q *= np.sign(np.diag(r))
    return np.ascontiguousarray(q[:rows, :cols])


def lstm_bias(hidden_size: int, forget_bias: float = 1.0) -> np.ndarray:
    """Zero bias with the forget-gate slice set to ``forget_bias``.

    Gate layout is ``[i, f, o, g]`` to match the order the paper lists the
    gate equations in (Fig. 4).
    """
    if hidden_size <= 0:
        raise ValueError("hidden_size must be positive")
    b = np.zeros(4 * hidden_size)
    b[hidden_size : 2 * hidden_size] = forget_bias
    return b
