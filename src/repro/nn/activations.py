"""Numerically-stable activations for LSTM gates.

The LSTM cell (paper Fig. 4) uses the logistic sigmoid for the input,
forget and output gates and ``tanh`` for the candidate gate and cell
output.  Derivatives are expressed *from the activation output* — during
BPTT we always have ``y = act(x)`` cached, so ``d act/dx`` computed from
``y`` avoids a second exponential evaluation (see the HPC guide's advice
to compute less, not just faster).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sigmoid",
    "tanh",
    "relu",
    "dsigmoid_from_y",
    "dtanh_from_y",
    "drelu_from_x",
]

# exp() overflows float64 past ~709; clipping at 60 keeps sigmoid exact to
# machine precision (sigmoid(60) == 1.0 in float64) without warnings.
_CLIP = 60.0


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Element-wise logistic sigmoid, stable for large |x|."""
    z = np.clip(x, -_CLIP, _CLIP)
    return 1.0 / (1.0 + np.exp(-z))


def tanh(x: np.ndarray) -> np.ndarray:
    """Element-wise hyperbolic tangent (numpy's is already stable)."""
    return np.tanh(x)


def relu(x: np.ndarray) -> np.ndarray:
    """Element-wise rectified linear unit (used by the dense head option)."""
    return np.maximum(x, 0.0)


def dsigmoid_from_y(y: np.ndarray) -> np.ndarray:
    """sigmoid'(x) given y = sigmoid(x):  y * (1 - y)."""
    return y * (1.0 - y)


def dtanh_from_y(y: np.ndarray) -> np.ndarray:
    """tanh'(x) given y = tanh(x):  1 - y**2."""
    return 1.0 - y * y


def drelu_from_x(x: np.ndarray) -> np.ndarray:
    """relu'(x) (subgradient 0 at the kink)."""
    return (x > 0.0).astype(x.dtype)
