"""Vectorized LSTM layer with full backpropagation through time.

Implements the cell of paper Fig. 4 exactly:

    i_t = sigmoid(W_i J_t + U_i h_{t-1} + b_i)
    f_t = sigmoid(W_f J_t + U_f h_{t-1} + b_f)
    o_t = sigmoid(W_o J_t + U_o h_{t-1} + b_o)
    g_t = tanh   (W_g J_t + U_g h_{t-1} + b_g)
    C_t = f_t ⊙ C_{t-1} + i_t ⊙ g_t
    h_t = o_t ⊙ tanh(C_t)

The four per-gate weight matrices are packed into single ``W`` (input),
``U`` (recurrent) and ``b`` (bias) arrays with gate layout ``[i, f, o, g]``
so each timestep costs two GEMMs instead of eight — the dominant cost, so
this is the vectorization that matters (HPC guide: optimize the
bottleneck, nothing else).  The batch dimension is fully vectorized; the
time dimension is a Python loop, which is irreducible for a recurrence.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activations import dsigmoid_from_y, dtanh_from_y, sigmoid
from repro.nn.initializers import glorot_uniform, lstm_bias, orthogonal

__all__ = ["LSTMLayer", "LSTMCache"]


class _LSTMScratch:
    """Preallocated buffers for :meth:`LSTMLayer.forward_inference`.

    One instance per layer, sized for a (B, T) batch shape and reused
    across batches — inference allocates nothing per call once warm.
    ``zsig``/``zg`` alias the (B, 4H) pre-activation block ``z``;
    the activated sigmoid gates live in the contiguous buffer ``a``
    (views ``ai/af/ao``) and the candidate in ``g``.
    """

    __slots__ = ("B", "T", "xw", "xw_tm", "z", "zsig", "zg", "a", "ai", "af",
                 "ao", "g", "h_prev", "c_prev", "c", "tmp", "out")

    def __init__(self, B: int, T: int, H: int):
        self.B, self.T = B, T
        self.xw = np.empty((B * T, 4 * H))
        # Time-major staging slab for the multichannel projection;
        # allocated on first D > 1 call only (the univariate path
        # computes straight into ``xw`` in time-major order).
        self.xw_tm: np.ndarray | None = None
        self.z = np.empty((B, 4 * H))
        # Gate layout is [i, f, o, g]: the three sigmoid gates form one
        # (B, 3H) block.  ``a`` is a dense copy of that block — ufunc
        # passes over a contiguous buffer are 2-3x faster than over a
        # strided slice of ``z``, and the activation is 4 more passes.
        self.zsig = self.z[:, : 3 * H]
        self.zg = self.z[:, 3 * H :]
        self.a = np.empty((B, 3 * H))
        self.ai = self.a[:, :H]
        self.af = self.a[:, H : 2 * H]
        self.ao = self.a[:, 2 * H : 3 * H]
        self.g = np.empty((B, H))
        self.h_prev = np.empty((B, H))
        self.c_prev = np.empty((B, H))
        self.c = np.empty((B, H))
        self.tmp = np.empty((B, H))
        self.out = np.empty((B, T, H))


def _sigmoid_inplace(z: np.ndarray) -> None:
    """In-place logistic sigmoid, bitwise-equal to ``activations.sigmoid``.

    Same op sequence (clip, negate, exp, 1 + ·, divide) on the same
    operands — only the destination differs, so results are identical
    to the out-of-place version to the last bit.
    """
    np.clip(z, -60.0, 60.0, out=z)
    np.negative(z, out=z)
    np.exp(z, out=z)
    z += 1.0
    np.divide(1.0, z, out=z)


class LSTMCache:
    """Forward-pass intermediates needed by :meth:`LSTMLayer.backward`.

    Stored as (T, B, ·) stacks; allocated once per forward call.
    """

    __slots__ = ("x", "gates", "c", "tanh_c", "h", "h0", "c0")

    def __init__(self, x, gates, c, tanh_c, h, h0, c0):
        self.x = x          # (B, T, D) layer input
        self.gates = gates  # (T, B, 4H) post-activation gate values [i,f,o,g]
        self.c = c          # (T, B, H) cell states C_t
        self.tanh_c = tanh_c  # (T, B, H) tanh(C_t)
        self.h = h          # (T, B, H) hidden states h_t
        self.h0 = h0        # (B, H) initial hidden state
        self.c0 = c0        # (B, H) initial cell state


class LSTMLayer:
    """One LSTM layer mapping (B, T, D) inputs to (B, T, H) hidden states.

    Parameters
    ----------
    input_size:
        Dimensionality D of each timestep's input (1 for raw JARs).
    hidden_size:
        Number of units — the size ``s`` of the cell-memory vector ``C``,
        one of the paper's four tuned hyperparameters.
    rng:
        Source of randomness for initialization; pass a seeded generator
        for reproducible predictors.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        self.input_size = int(input_size)
        self.hidden_size = int(hidden_size)
        H = self.hidden_size
        # Input kernel: Glorot over each gate block; recurrent kernel:
        # orthogonal per gate (what Keras' LSTM default does).
        self.W = glorot_uniform(rng, input_size, H, (input_size, 4 * H))
        self.U = np.concatenate(
            [orthogonal(rng, H, H) for _ in range(4)], axis=1
        )
        self.b = lstm_bias(H)
        self._scratch: _LSTMScratch | None = None

    # Scratch buffers are a per-process cache, not state: drop them when
    # the layer is pickled (e.g. shipped to a trial-evaluation worker).
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_scratch"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._scratch = state.get("_scratch")

    # ------------------------------------------------------------------
    # parameter plumbing
    # ------------------------------------------------------------------
    @property
    def params(self) -> list[np.ndarray]:
        """Parameter arrays in a stable order (W, U, b)."""
        return [self.W, self.U, self.b]

    def zero_grads(self) -> list[np.ndarray]:
        """Freshly-zeroed gradient buffers matching :attr:`params`."""
        return [np.zeros_like(p) for p in self.params]

    def n_params(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.params)

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------
    def forward(
        self,
        x: np.ndarray,
        h0: np.ndarray | None = None,
        c0: np.ndarray | None = None,
    ) -> tuple[np.ndarray, LSTMCache]:
        """Run the recurrence over a (B, T, D) batch.

        Returns the full hidden-state sequence (B, T, H) plus the cache
        for BPTT.  Initial states default to zeros (the stateless mode
        used for windowed JAR prediction).
        """
        if x.ndim != 3:
            raise ValueError(f"expected (batch, time, features) input, got {x.shape}")
        B, T, D = x.shape
        if D != self.input_size:
            raise ValueError(f"input feature dim {D} != layer input_size {self.input_size}")
        if T == 0:
            raise ValueError("sequence length must be positive")
        H = self.hidden_size
        h_prev = np.zeros((B, H)) if h0 is None else np.array(h0, dtype=np.float64)
        c_prev = np.zeros((B, H)) if c0 is None else np.array(c0, dtype=np.float64)

        # Hoist the input projection out of the loop: one big GEMM over
        # all timesteps instead of T small ones.
        xw = x.reshape(B * T, D) @ self.W  # (B*T, 4H)
        xw = xw.reshape(B, T, 4 * H) + self.b

        gates = np.empty((T, B, 4 * H))
        cs = np.empty((T, B, H))
        tanh_cs = np.empty((T, B, H))
        hs = np.empty((T, B, H))
        h0_saved, c0_saved = h_prev.copy(), c_prev.copy()

        for t in range(T):
            z = xw[:, t, :] + h_prev @ self.U  # (B, 4H)
            i = sigmoid(z[:, :H])
            f = sigmoid(z[:, H : 2 * H])
            o = sigmoid(z[:, 2 * H : 3 * H])
            g = np.tanh(z[:, 3 * H :])
            c = f * c_prev + i * g
            tc = np.tanh(c)
            h = o * tc
            gates[t, :, :H] = i
            gates[t, :, H : 2 * H] = f
            gates[t, :, 2 * H : 3 * H] = o
            gates[t, :, 3 * H :] = g
            cs[t] = c
            tanh_cs[t] = tc
            hs[t] = h
            h_prev, c_prev = h, c

        cache = LSTMCache(x, gates, cs, tanh_cs, hs, h0_saved, c0_saved)
        return np.ascontiguousarray(hs.transpose(1, 0, 2)), cache

    # ------------------------------------------------------------------
    # inference fast path
    # ------------------------------------------------------------------
    def forward_inference(
        self,
        x: np.ndarray,
        h0: np.ndarray | None = None,
        c0: np.ndarray | None = None,
        return_sequences: bool = True,
    ) -> np.ndarray:
        """Forward pass without the BPTT cache — the deployed hot path.

        Bitwise-identical to :meth:`forward`'s hidden sequence, but:

        * no ``gates/c/tanh_c/h`` (T, B, ·) stacks are allocated;
        * per-layer scratch buffers are reused across batches of the
          same (B, T) shape, so a warm predictor allocates nothing;
        * the four gate activations run in place on slices of one
          (B, 4H) pre-activation block;
        * hidden states are written directly in (B, T, H) layout, so
          there is no final ``transpose`` + ``ascontiguousarray`` copy.

        With ``return_sequences=False`` only the final hidden state
        ``h_T`` of shape (B, H) is returned and the per-step output
        writes are skipped entirely — the right mode for the last layer
        of a stack, whose head reads ``h_T`` alone.

        The returned array is a view of the layer's scratch: valid until
        the next ``forward_inference`` call on this layer.  Not
        thread-safe — callers that share a model across threads must
        hold their own lock (the training path is unaffected).
        """
        if x.ndim != 3:
            raise ValueError(f"expected (batch, time, features) input, got {x.shape}")
        B, T, D = x.shape
        if D != self.input_size:
            raise ValueError(f"input feature dim {D} != layer input_size {self.input_size}")
        if T == 0:
            raise ValueError("sequence length must be positive")
        H = self.hidden_size

        s = self._scratch
        if s is None or s.B != B or s.T != T:
            s = self._scratch = _LSTMScratch(B, T, H)

        if D == 1:
            # Univariate hot case: x @ W with one input feature is an
            # outer product — each element is the single correctly
            # rounded product x[b,t,0] * W[0,j], so one bulk broadcast
            # multiply is bitwise-equal to the GEMM (which BLAS handles
            # poorly at K=1).  Computed in (T, B, 4H) layout so every
            # ``xw[t]`` step slice is contiguous.
            xw = s.xw.reshape(T, B, 4 * H)
            np.multiply(x.transpose(1, 0, 2), self.W, out=xw)
            xw += self.b
        else:
            # Multichannel case: the same hoisted GEMM as the cached
            # path — one (B*T, D) @ (D, 4H) product, so every element
            # is computed by the identical dot-product reduction —
            # then a transpose-copy into a (T, B, 4H) time-major slab
            # so the step slices below are contiguous, exactly like
            # the univariate branch.  Copies never change bits, so
            # parity with :meth:`forward` holds for every D.
            np.matmul(np.ascontiguousarray(x).reshape(B * T, D), self.W, out=s.xw)
            if s.xw_tm is None:
                s.xw_tm = np.empty((T, B, 4 * H))
            xw = s.xw_tm
            np.copyto(xw, s.xw.reshape(B, T, 4 * H).transpose(1, 0, 2))
            xw += self.b

        if h0 is None:
            s.h_prev.fill(0.0)
        else:
            s.h_prev[...] = h0
        if c0 is None:
            s.c_prev.fill(0.0)
        else:
            s.c_prev[...] = c0

        # Hot loop: ufuncs hoisted to locals and ``out`` passed
        # positionally — at these array sizes (a few KB per step) the
        # numpy dispatch overhead is a measurable share of each step.
        mul, mm, add, clip = np.multiply, np.matmul, np.add, np.clip
        neg, exp, div, tanh = np.negative, np.exp, np.divide, np.tanh
        z, a, g, tmp = s.z, s.a, s.g, s.tmp
        zsig, zg, ai, af, ao = s.zsig, s.zg, s.ai, s.af, s.ao
        h_prev, out = s.h_prev, s.out
        c, c_prev = s.c, s.c_prev
        U = self.U
        # Hoist per-step slice construction out of the loop: iterating a
        # (T, B, 4H) array yields the contiguous step views directly
        # (both projection branches land in time-major layout).
        xts = list(xw)
        for t in range(T):
            # z_t = (x_t W + b) + h_{t-1} U; IEEE addition commutes
            # bitwise, so either accumulation direction matches the
            # cached path exactly.
            mm(h_prev, U, z)
            add(z, xts[t], z)
            # Fused sigmoid over [i, f, o]: the clip pass reads the
            # strided (B, 3H) slice of z and lands in the contiguous
            # buffer ``a``; the remaining four passes run contiguous
            # (2-3x faster than strided — same values either way).
            clip(zsig, -60.0, 60.0, a)
            neg(a, a)
            exp(a, a)
            add(a, 1.0, a)
            div(1.0, a, a)
            tanh(zg, g)
            # C_t = f ⊙ C_{t-1} + i ⊙ g, then h_t = o ⊙ tanh(C_t),
            # written straight into the (B, T, H) output slab.
            mul(af, c_prev, c)
            mul(ai, g, tmp)
            add(c, tmp, c)
            tanh(c, tmp)
            mul(ao, tmp, h_prev)
            if return_sequences:
                out[:, t] = h_prev
            c, c_prev = c_prev, c  # swap roles instead of copying C_t
        return out if return_sequences else h_prev

    # ------------------------------------------------------------------
    # backward
    # ------------------------------------------------------------------
    def backward(
        self, d_h_seq: np.ndarray, cache: LSTMCache
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Full BPTT given d(loss)/d(hidden sequence) of shape (B, T, H).

        Returns ``(dx, grads)`` where ``dx`` is d(loss)/d(input) with the
        input's shape and ``grads`` matches :attr:`params` order.
        """
        x, gates, cs, tanh_cs = cache.x, cache.gates, cache.c, cache.tanh_c
        B, T, D = x.shape
        H = self.hidden_size
        if d_h_seq.shape != (B, T, H):
            raise ValueError(
                f"d_h_seq shape {d_h_seq.shape} != expected {(B, T, H)}"
            )

        dW = np.zeros_like(self.W)
        dU = np.zeros_like(self.U)
        db = np.zeros_like(self.b)
        dz_all = np.empty((T, B, 4 * H))  # pre-activation grads, for batched GEMMs

        dh_next = np.zeros((B, H))
        dc_next = np.zeros((B, H))
        for t in range(T - 1, -1, -1):
            i = gates[t, :, :H]
            f = gates[t, :, H : 2 * H]
            o = gates[t, :, 2 * H : 3 * H]
            g = gates[t, :, 3 * H :]
            c_prev = cs[t - 1] if t > 0 else cache.c0
            tc = tanh_cs[t]

            dh = d_h_seq[:, t, :] + dh_next
            do = dh * tc
            dc = dh * o * dtanh_from_y(tc) + dc_next
            df = dc * c_prev
            di = dc * g
            dg = dc * i
            dc_next = dc * f

            dz = dz_all[t]
            dz[:, :H] = di * dsigmoid_from_y(i)
            dz[:, H : 2 * H] = df * dsigmoid_from_y(f)
            dz[:, 2 * H : 3 * H] = do * dsigmoid_from_y(o)
            dz[:, 3 * H :] = dg * dtanh_from_y(g)

            h_prev = cache.h[t - 1] if t > 0 else cache.h0
            dU += h_prev.T @ dz
            dh_next = dz @ self.U.T

        # Batched input-side GEMMs (time loop only carries the recurrence).
        dz_flat = dz_all.transpose(1, 0, 2).reshape(B * T, 4 * H)
        dW += x.reshape(B * T, D).T @ dz_flat
        db += dz_flat.sum(axis=0)
        dx = (dz_flat @ self.W.T).reshape(B, T, D)
        return dx, [dW, dU, db]
