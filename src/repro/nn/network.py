"""The trainable model ``A`` = stacked LSTM ``M`` + dense head ``T`` (Fig. 3).

:class:`LSTMRegressor` is the unit the LoadDynamics workflow trains in
step 1, validates in step 2, and ultimately deploys as the predictor
``f``.  It is a plain sequence-to-one regressor:

* input — a batch of history windows, shape ``(N, n, 1)`` where ``n`` is
  the history length hyperparameter;
* output — one predicted (normalized) JAR per window.

Training follows the paper's setup: MSE loss, Adam, mini-batches of the
tuned ``batch_size``, plus two standard stabilizers the paper's TF stack
applied implicitly — global-norm gradient clipping and early stopping on
a held-out split.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.nn.dense import DenseLayer
from repro.nn.losses import LOSSES
from repro.nn.lstm import LSTMLayer
from repro.nn.optimizers import clip_gradients, make_optimizer
from repro.obs import events as _events
from repro.obs.callbacks import CallbackList

__all__ = ["LSTMRegressor", "TrainingHistory"]


@dataclass
class TrainingHistory:
    """Per-epoch training diagnostics returned by :meth:`LSTMRegressor.fit`."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    grad_norm: list[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)


class LSTMRegressor:
    """Stacked-LSTM regressor with a linear output head.

    Parameters
    ----------
    hidden_size:
        Units per LSTM layer (the cell-memory size ``s``).
    num_layers:
        Number of stacked LSTM layers (1–5 in the paper's search space).
    input_size:
        Features per timestep (1 for univariate JAR series).
    seed:
        Seed for weight init and batch shuffling; fixed seed → identical
        trained model on identical data.
    """

    def __init__(
        self,
        hidden_size: int,
        num_layers: int = 1,
        input_size: int = 1,
        seed: int = 0,
        cell: str = "lstm",
    ):
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if cell not in ("lstm", "gru"):
            raise ValueError("cell must be 'lstm' or 'gru'")
        self.hidden_size = int(hidden_size)
        self.num_layers = int(num_layers)
        self.input_size = int(input_size)
        self.seed = int(seed)
        self.cell = cell
        rng = np.random.default_rng(seed)
        if cell == "gru":
            from repro.nn.gru import GRULayer

            layer_cls = GRULayer
        else:
            layer_cls = LSTMLayer
        self.lstm_layers: list = []
        d = self.input_size
        for _ in range(self.num_layers):
            self.lstm_layers.append(layer_cls(d, self.hidden_size, rng))
            d = self.hidden_size
        self.head = DenseLayer(self.hidden_size, 1, rng)
        self._shuffle_rng = np.random.default_rng(seed + 1)

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------
    @property
    def params(self) -> list[np.ndarray]:
        out: list[np.ndarray] = []
        for layer in self.lstm_layers:
            out.extend(layer.params)
        out.extend(self.head.params)
        return out

    def n_params(self) -> int:
        """Total trainable scalar count — the model-complexity knob the
        paper's overfitting discussion (Section III-A) is about."""
        return sum(p.size for p in self.params)

    # ------------------------------------------------------------------
    # forward / predict
    # ------------------------------------------------------------------
    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, list]:
        caches = []
        h = x
        for layer in self.lstm_layers:
            h, cache = layer.forward(h)
            caches.append(cache)
        last_h = h[:, -1, :]  # h_{i-1}: final hidden state feeds the head
        pred = self.head.forward(last_h)[:, 0]
        return pred, caches

    def _forward_inference(self, x: np.ndarray) -> np.ndarray:
        """Cache-free forward: the deployed inference hot path.

        Each layer's ``forward_inference`` skips the BPTT stacks and
        reuses per-layer scratch buffers across batches; outputs are
        bitwise-identical to :meth:`_forward` (enforced by the fast-path
        parity tests).  The last layer runs with
        ``return_sequences=False`` — the head only reads the final
        hidden state, so its (B, T, H) output slab is never written.
        Not thread-safe — concurrent prediction on a shared model must
        use :meth:`_forward` or external locking.
        """
        h = x
        for layer in self.lstm_layers[:-1]:
            h = layer.forward_inference(h)
        last_h = self.lstm_layers[-1].forward_inference(h, return_sequences=False)
        return self.head.forward(last_h)[:, 0]

    def predict(self, x: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        """Predict one value per window; accepts (N, n) or (N, n, 1).

        Uses the cache-free inference fast path (no training-time
        intermediates are allocated); results are bitwise-identical to
        running the cached training forward.
        """
        x = self._coerce_input(x)
        if x.shape[0] <= batch_size:
            # Hot case: one chunk, no concatenate copy.
            return self._forward_inference(x) if x.shape[0] else np.empty(0)
        outs = [
            self._forward_inference(x[a : a + batch_size])
            for a in range(0, x.shape[0], batch_size)
        ]
        return np.concatenate(outs)

    def _coerce_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2:
            x = x[:, :, None]
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ValueError(
                f"expected (N, n) or (N, n, {self.input_size}) windows, got {x.shape}"
            )
        return x

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def _backward(self, d_pred: np.ndarray, caches: list, x_shape) -> list[np.ndarray]:
        B, T, _ = x_shape
        d_last, head_grads = self.head.backward(d_pred[:, None])
        d_seq = np.zeros((B, T, self.hidden_size))
        d_seq[:, -1, :] = d_last
        grads_rev: list[np.ndarray] = []
        d = d_seq
        for layer, cache in zip(
            reversed(self.lstm_layers), reversed(caches), strict=True
        ):
            d, layer_grads = layer.backward(d, cache)
            grads_rev.extend(reversed(layer_grads))
        grads = list(reversed(grads_rev))
        grads.extend(head_grads)
        return grads

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 50,
        batch_size: int = 32,
        lr: float = 1e-3,
        optimizer: str = "adam",
        loss: str = "mse",
        clip_norm: float = 5.0,
        validation: tuple[np.ndarray, np.ndarray] | None = None,
        patience: int = 10,
        min_delta: float = 1e-6,
        shuffle: bool = True,
        callbacks: list | None = None,
    ) -> TrainingHistory:
        """Train on windows ``x`` → targets ``y``.

        With ``validation`` given, tracks the best-epoch weights and
        restores them at the end (early stopping after ``patience``
        epochs without ``min_delta`` improvement).

        ``callbacks`` is a list of :class:`repro.obs.TrainingCallback`
        objects (or plain ``(epoch, logs)`` callables); each gets
        ``on_epoch_end`` exactly once per epoch run, with the same
        numbers :class:`TrainingHistory` accumulates plus the epoch
        wall-clock duration.
        """
        from repro.resilience import faults as _faults

        injector = _faults.active()
        nan_loss_epoch: int | None = None
        if injector is not None:
            fired = injector.maybe_fire("nn.fit")
            if "nan_loss" in fired:
                spec_arg = fired["nan_loss"].arg
                nan_loss_epoch = int(spec_arg) if spec_arg is not None else 0
        x = self._coerce_input(x)
        y = np.asarray(y, dtype=np.float64).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"{x.shape[0]} windows but {y.shape[0]} targets")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty data set")
        if loss not in LOSSES:
            raise ValueError(f"unknown loss {loss!r}")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        batch_size = int(min(max(1, batch_size), x.shape[0]))
        loss_fn = LOSSES[loss]
        opt = make_optimizer(optimizer, lr)
        params = self.params

        val_xy = None
        if validation is not None:
            vx = self._coerce_input(validation[0])
            vy = np.asarray(validation[1], dtype=np.float64).ravel()
            if vx.shape[0] != vy.shape[0]:
                raise ValueError("validation windows/targets length mismatch")
            if vx.shape[0] > 0:
                val_xy = (vx, vy)

        history = TrainingHistory()
        best_val = np.inf
        best_weights: list[np.ndarray] | None = None
        stall = 0
        n = x.shape[0]

        cbs = CallbackList(callbacks)
        if cbs:
            cbs.on_train_begin(self, epochs)

        for epoch in range(epochs):
            t_epoch = time.perf_counter()
            order = self._shuffle_rng.permutation(n) if shuffle else np.arange(n)
            epoch_loss = 0.0
            epoch_norm = 0.0
            n_batches = 0
            for a in range(0, n, batch_size):
                idx = order[a : a + batch_size]
                xb, yb = x[idx], y[idx]
                pred, caches = self._forward(xb)
                value, d_pred = loss_fn(pred, yb)
                grads = self._backward(d_pred, caches, xb.shape)
                epoch_norm += clip_gradients(grads, clip_norm)
                opt.step(params, grads)
                epoch_loss += value
                n_batches += 1
            if nan_loss_epoch is not None and epoch == nan_loss_epoch:
                epoch_loss = float("nan")
            history.train_loss.append(epoch_loss / n_batches)
            history.grad_norm.append(epoch_norm / n_batches)

            improved = False
            stop = False
            if val_xy is not None:
                vp = self.predict(val_xy[0])
                vloss, _ = loss_fn(vp, val_xy[1])
                history.val_loss.append(vloss)
                if vloss < best_val - min_delta:
                    best_val = vloss
                    best_weights = [p.copy() for p in params]
                    history.best_epoch = epoch
                    stall = 0
                    improved = True
                else:
                    stall += 1
                    if stall >= patience:
                        history.stopped_early = True
                        stop = True

            # Telemetry is a single branch when no callbacks are passed
            # and no event sink is registered.
            if cbs or _events.enabled():
                logs = {
                    "train_loss": history.train_loss[-1],
                    "grad_norm": history.grad_norm[-1],
                    "duration_s": time.perf_counter() - t_epoch,
                    "n_batches": n_batches,
                }
                if val_xy is not None:
                    logs["val_loss"] = history.val_loss[-1]
                    logs["improved"] = improved
                if cbs:
                    cbs.on_epoch_end(epoch, logs)
                if _events.enabled():
                    _events.emit("train.epoch", epoch=epoch, **logs)
            if stop:
                break

        if best_weights is not None:
            for p, w in zip(params, best_weights, strict=True):
                p[...] = w
        if cbs:
            cbs.on_train_end(history)
        return history

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def config(self) -> dict:
        """Architecture config, sufficient to reconstruct the model shape."""
        return {
            "hidden_size": self.hidden_size,
            "num_layers": self.num_layers,
            "input_size": self.input_size,
            "seed": self.seed,
            "cell": self.cell,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LSTMRegressor(hidden_size={self.hidden_size}, "
            f"num_layers={self.num_layers}, params={self.n_params()})"
        )
