"""First-order optimizers operating on flat lists of parameter arrays.

The paper uses Adam (Kingma & Ba, 2015) for all LSTM training
(Section IV-A).  SGD-with-momentum and RMSProp are included for the
Section V discussion of alternative training algorithms and for the
optimizer ablation bench.

All optimizers update parameters **in place** (the HPC guides' in-place
idiom: ``a *= 0`` beats ``a = 0*a``) and keep per-parameter state keyed by
position, so the parameter list must stay stable across steps.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "RMSProp", "make_optimizer", "clip_gradients"]


def clip_gradients(grads: list[np.ndarray], max_norm: float) -> float:
    """Scale ``grads`` in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm.  Gradient clipping is the standard guard
    against the exploding-gradient failure the paper calls out for long
    histories (Section III-A).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    sq = 0.0
    for g in grads:
        sq += float(np.sum(g * g))
    norm = float(np.sqrt(sq))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for g in grads:
            g *= scale
    return norm


class Optimizer:
    """Base class: subclasses implement :meth:`step`."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop accumulated state (used when re-training from scratch)."""


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity: list[np.ndarray] | None = None

    def reset(self) -> None:
        self._velocity = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity, strict=True):
            v *= self.momentum
            v -= self.lr * g
            p += v


class RMSProp(Optimizer):
    """RMSProp with exponentially-decaying squared-gradient average."""

    def __init__(self, lr: float = 1e-3, rho: float = 0.9, eps: float = 1e-8):
        super().__init__(lr)
        if not 0.0 < rho < 1.0:
            raise ValueError("rho must be in (0, 1)")
        self.rho = float(rho)
        self.eps = float(eps)
        self._sq: list[np.ndarray] | None = None

    def reset(self) -> None:
        self._sq = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._sq is None:
            self._sq = [np.zeros_like(p) for p in params]
        for p, g, s in zip(params, grads, self._sq, strict=True):
            s *= self.rho
            s += (1.0 - self.rho) * g * g
            p -= self.lr * g / (np.sqrt(s) + self.eps)


class Adam(Optimizer):
    """Adam with bias-corrected first/second moments (the paper's optimizer)."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        c1 = 1.0 - self.beta1**self._t
        c2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(params, grads, self._m, self._v, strict=True):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / c1) / (np.sqrt(v / c2) + self.eps)


_REGISTRY = {"sgd": SGD, "adam": Adam, "rmsprop": RMSProp}


def make_optimizer(name: str, lr: float, **kwargs) -> Optimizer:
    """Instantiate an optimizer by registry name (``adam``/``sgd``/``rmsprop``)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ValueError(f"unknown optimizer {name!r}; choose from {sorted(_REGISTRY)}")
    return _REGISTRY[key](lr=lr, **kwargs)
