"""From-scratch neural-network substrate (replaces TensorFlow).

The paper trains stacked LSTM networks with a fully-connected output head
using mean-squared-error loss and the Adam optimizer (Section IV-A).  This
subpackage implements exactly that stack in vectorized numpy:

* :mod:`repro.nn.activations` — numerically-stable gate nonlinearities
* :mod:`repro.nn.initializers` — Glorot / orthogonal / forget-bias init
* :mod:`repro.nn.lstm` — multi-layer LSTM with full BPTT (Fig. 3/4)
* :mod:`repro.nn.dense` — the fully-connected layer ``T``
* :mod:`repro.nn.losses` — MSE / MAE / Huber with analytic gradients
* :mod:`repro.nn.optimizers` — Adam (paper default), SGD, RMSProp
* :mod:`repro.nn.network` — :class:`LSTMRegressor`, the trainable model ``A``
* :mod:`repro.nn.serialization` — save/load trained predictors
"""

from repro.nn.activations import sigmoid, tanh, dsigmoid_from_y, dtanh_from_y
from repro.nn.dense import DenseLayer
from repro.nn.initializers import glorot_uniform, orthogonal
from repro.nn.losses import huber_loss, mae_loss, mse_loss
from repro.nn.lstm import LSTMLayer
from repro.nn.network import LSTMRegressor, TrainingHistory
from repro.nn.optimizers import SGD, Adam, RMSProp, make_optimizer
from repro.nn.serialization import CorruptModelError, load_regressor, save_regressor

__all__ = [
    "sigmoid",
    "tanh",
    "dsigmoid_from_y",
    "dtanh_from_y",
    "glorot_uniform",
    "orthogonal",
    "mse_loss",
    "mae_loss",
    "huber_loss",
    "LSTMLayer",
    "DenseLayer",
    "LSTMRegressor",
    "TrainingHistory",
    "Adam",
    "SGD",
    "RMSProp",
    "make_optimizer",
    "save_regressor",
    "CorruptModelError",
    "load_regressor",
]
