"""Training losses with analytic gradients.

The paper trains with mean squared error (Section IV-A).  MAE and Huber
are provided for the "other loss functions" discussion in Section V — the
framework can optimize over them as an extension hyperparameter.

Each loss returns ``(value, grad)`` where ``grad`` is d(loss)/d(pred)
with the same shape as ``pred``; the 1/N averaging is folded into the
gradient so layers can backpropagate it unchanged.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mse_loss", "mae_loss", "huber_loss", "LOSSES"]


def _check(pred: np.ndarray, target: np.ndarray) -> None:
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: pred {pred.shape} vs target {target.shape}")
    if pred.size == 0:
        raise ValueError("loss undefined for empty arrays")


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient."""
    _check(pred, target)
    diff = pred - target
    value = float(np.mean(diff * diff))
    grad = (2.0 / diff.size) * diff
    return value, grad


def mae_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean absolute error and its (sub)gradient."""
    _check(pred, target)
    diff = pred - target
    value = float(np.mean(np.abs(diff)))
    grad = np.sign(diff) / diff.size
    return value, grad


def huber_loss(
    pred: np.ndarray, target: np.ndarray, delta: float = 1.0
) -> tuple[float, np.ndarray]:
    """Huber loss: quadratic within ``delta`` of the target, linear outside."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    _check(pred, target)
    diff = pred - target
    absd = np.abs(diff)
    quad = absd <= delta
    value = float(
        np.mean(np.where(quad, 0.5 * diff * diff, delta * (absd - 0.5 * delta)))
    )
    grad = np.where(quad, diff, delta * np.sign(diff)) / diff.size
    return value, grad


#: Registry keyed by the names accepted in model configs.
LOSSES = {"mse": mse_loss, "mae": mae_loss, "huber": huber_loss}
