"""Save/load trained :class:`~repro.nn.network.LSTMRegressor` models.

A deployed LoadDynamics predictor is just the best model found by the BO
loop; persisting it lets the auto-scaler process load it without
re-running the (hours-long, per the paper) optimization.  Format: a
single ``.npz`` holding the architecture config plus every weight array
in :attr:`LSTMRegressor.params` order.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.network import LSTMRegressor

__all__ = ["save_regressor", "load_regressor"]

_FORMAT_VERSION = 1


def save_regressor(model: LSTMRegressor, path: str | Path) -> Path:
    """Write ``model`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {"version": _FORMAT_VERSION, "config": model.config()}
    arrays = {f"param_{i}": p for i, p in enumerate(model.params)}
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8), **arrays)
    return path


def load_regressor(path: str | Path) -> LSTMRegressor:
    """Reconstruct a model previously written by :func:`save_regressor`."""
    path = Path(path)
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported model format version {meta.get('version')}")
        cfg = meta["config"]
        model = LSTMRegressor(
            hidden_size=cfg["hidden_size"],
            num_layers=cfg["num_layers"],
            input_size=cfg["input_size"],
            seed=cfg["seed"],
            cell=cfg.get("cell", "lstm"),  # pre-GRU files default to LSTM
        )
        params = model.params
        for i, p in enumerate(params):
            key = f"param_{i}"
            if key not in data:
                raise ValueError(f"model file missing array {key}")
            saved = data[key]
            if saved.shape != p.shape:
                raise ValueError(
                    f"shape mismatch for {key}: file {saved.shape} vs model {p.shape}"
                )
            p[...] = saved
    return model
