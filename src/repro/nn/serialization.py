"""Save/load trained :class:`~repro.nn.network.LSTMRegressor` models.

A deployed LoadDynamics predictor is just the best model found by the BO
loop; persisting it lets the auto-scaler process load it without
re-running the (hours-long, per the paper) optimization.  Format: a
single ``.npz`` holding the architecture config plus every weight array
in :attr:`LSTMRegressor.params` order.

Writes are atomic (temp file + fsync + ``os.replace``), so a crash
mid-save never leaves a half-written model where the serving process
expects a good one; a truncated or garbage file raises
:class:`CorruptModelError` with a usable message instead of a raw
numpy/zipfile exception.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path

import numpy as np

from repro.nn.network import LSTMRegressor

__all__ = ["save_regressor", "load_regressor", "CorruptModelError"]

_FORMAT_VERSION = 1


class CorruptModelError(ValueError):
    """The model file is truncated, garbage, or structurally inconsistent."""


def save_regressor(model: LSTMRegressor, path: str | Path) -> Path:
    """Atomically write ``model`` to ``path`` (``.npz`` appended if missing).

    The archive is staged at ``path + ".tmp"``, flushed and fsynced, then
    renamed over the target — readers see either the old file or the new
    one, never a torn write.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {"version": _FORMAT_VERSION, "config": model.config()}
    arrays = {f"param_{i}": p for i, p in enumerate(model.params)}
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            np.savez(
                fh,
                meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
                **arrays,
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def load_regressor(path: str | Path) -> LSTMRegressor:
    """Reconstruct a model previously written by :func:`save_regressor`.

    Raises
    ------
    CorruptModelError
        When the file is not a readable archive or its contents don't
        reconstruct a consistent model (missing metadata/arrays, shape
        mismatches).  ``FileNotFoundError`` passes through unchanged.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            return _reconstruct(path, data)
    except CorruptModelError:
        raise
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, KeyError, EOFError) as exc:
        raise CorruptModelError(
            f"{path} is not a readable model archive (truncated or corrupt): {exc}"
        ) from exc


def _reconstruct(path: Path, data) -> LSTMRegressor:
    if "meta" not in data:
        raise CorruptModelError(f"{path} has no 'meta' record")
    try:
        meta = json.loads(bytes(data["meta"]).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptModelError(f"{path} has a corrupt 'meta' record: {exc}") from exc
    if meta.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported model format version {meta.get('version')}")
    try:
        cfg = meta["config"]
        model = LSTMRegressor(
            hidden_size=cfg["hidden_size"],
            num_layers=cfg["num_layers"],
            input_size=cfg["input_size"],
            seed=cfg["seed"],
            cell=cfg.get("cell", "lstm"),  # pre-GRU files default to LSTM
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptModelError(f"{path} has an invalid model config: {exc}") from exc
    params = model.params
    for i, p in enumerate(params):
        key = f"param_{i}"
        if key not in data:
            raise CorruptModelError(f"{path}: model file missing array {key}")
        saved = data[key]
        if saved.shape != p.shape:
            raise CorruptModelError(
                f"{path}: shape mismatch for {key}: "
                f"file {saved.shape} vs model {p.shape}"
            )
        p[...] = saved
    return model
