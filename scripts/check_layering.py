#!/usr/bin/env python
"""Enforce the repo's import layering (DESIGN.md §9).

The package DAG, bottom to top::

    substrate   nn / ml / baselines / gp      (model math; no framework)
    models      repro.models                  (families over the substrate)
    core        repro.core                    (the Fig. 6 pipeline stages)
    apps        cli / experiments             (entry points)

Rules checked here (AST-based, so strings/comments can't trip it and
lazy function-level imports are caught too — the DAG must hold at any
call time, not just import time):

* substrate packages must not import ``repro.core``, ``repro.models``,
  ``repro.cli``, or ``repro.experiments`` — they are leaf libraries;
* ``repro.obs`` (including ``repro.obs.monitor``) sits below everything
  that feeds it telemetry: serving/core/models/cli/experiments are all
  off limits — monitors consume observations, they never reach back
  into the layers that produce them;
* ``repro.models`` and ``repro.serving`` must not import ``repro.cli``
  or ``repro.experiments`` — they are library code, not entry points;
* ``repro.traces`` is substrate too: no ``repro.core``/``repro.models``
  or entry points (its lazy hooks into ``repro.serving`` sanitization
  and ``repro.resilience`` fault sites are the sanctioned exceptions).

Exit status 0 when clean; 1 with one line per violation otherwise.
Run directly or via ``scripts/ci.sh``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: package (relative to src/repro) -> module prefixes it must not import.
_FORBIDDEN: dict[str, tuple[str, ...]] = {
    "nn": ("repro.core", "repro.models", "repro.cli", "repro.experiments"),
    "ml": ("repro.core", "repro.models", "repro.cli", "repro.experiments"),
    "baselines": ("repro.core", "repro.models", "repro.cli", "repro.experiments"),
    "gp": ("repro.core", "repro.models", "repro.cli", "repro.experiments"),
    "models": ("repro.cli", "repro.experiments"),
    "serving": ("repro.cli", "repro.experiments"),
    "traces": ("repro.core", "repro.models", "repro.cli", "repro.experiments"),
    "obs": (
        "repro.core",
        "repro.models",
        "repro.serving",
        "repro.cli",
        "repro.experiments",
    ),
}


def _imported_modules(tree: ast.AST) -> list[tuple[int, str]]:
    """All (lineno, module) pairs imported anywhere in the file."""
    out: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            out.extend((node.lineno, alias.name) for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            out.append((node.lineno, node.module))
    return out


def _violates(module: str, forbidden: tuple[str, ...]) -> str | None:
    for prefix in forbidden:
        if module == prefix or module.startswith(prefix + "."):
            return prefix
    return None


def check_layering(root: Path) -> list[str]:
    """Return one message per layering violation under ``root``/src/repro."""
    violations: list[str] = []
    pkg_root = root / "src" / "repro"
    for package, forbidden in sorted(_FORBIDDEN.items()):
        pkg_dir = pkg_root / package
        if not pkg_dir.is_dir():
            continue
        for path in sorted(pkg_dir.rglob("*.py")):
            try:
                tree = ast.parse(path.read_text(), filename=str(path))
            except SyntaxError as exc:
                violations.append(f"{path}: unparseable ({exc})")
                continue
            for lineno, module in _imported_modules(tree):
                hit = _violates(module, forbidden)
                if hit is not None:
                    rel = path.relative_to(root)
                    violations.append(
                        f"{rel}:{lineno}: {package} layer must not import "
                        f"{hit} (imports {module})"
                    )
    return violations


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    root = Path(args[0]) if args else Path(__file__).resolve().parent.parent
    violations = check_layering(root)
    if violations:
        for message in violations:
            sys.stderr.write(message + "\n")
        sys.stderr.write(f"{len(violations)} layering violation(s)\n")
        return 1
    sys.stderr.write("layering OK\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
