#!/usr/bin/env python
"""Lint: forbid bare ``print(...)`` calls inside ``src/repro``.

Diagnostics belong on the namespaced ``repro.*`` loggers
(:mod:`repro.obs.logging`); only the CLI (``cli.py``) talks to stdout
directly, because its tables *are* the user-facing product.  The check
is AST-based so comments and strings mentioning ``print(`` don't trip
it.

Exit status: 0 when clean, 1 with a ``path:line`` listing otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Files allowed to print: the CLI's aligned tables are stdout output.
ALLOWED = {"cli.py"}

#: Scripts outside src/repro that must also use the repro loggers.
EXTRA_FILES = ("fault_smoke.py",)


def find_prints(path: Path) -> list[int]:
    """Line numbers of ``print(...)`` calls in a Python source file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    lines = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            lines.append(node.lineno)
    return lines


def main(argv: list[str] | None = None) -> int:
    root = Path(__file__).resolve().parent.parent / "src" / "repro"
    if argv:
        root = Path(argv[0])
    violations: list[str] = []
    targets = [p for p in sorted(root.rglob("*.py")) if p.name not in ALLOWED]
    script_dir = Path(__file__).resolve().parent
    targets += [script_dir / name for name in EXTRA_FILES if (script_dir / name).exists()]
    for path in targets:
        for lineno in find_prints(path):
            violations.append(f"{path}:{lineno}")
    if violations:
        sys.stderr.write(
            "bare print() calls found (use repro.obs.logging.get_logger):\n"
        )
        for v in violations:
            sys.stderr.write(f"  {v}\n")
        return 1
    print(f"OK: no bare print() under {root} (outside {sorted(ALLOWED)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
