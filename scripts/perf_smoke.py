#!/usr/bin/env python
"""CI perf-smoke stage: fast path stays exact, benchmarks stay runnable.

Three checks, all cheap enough for every CI run:

1. **Fast-path parity** — the cache-free inference kernels
   (``forward_inference``) must be bitwise-identical to the cached
   training forward for LSTM and GRU at deployment-like shapes, and
   batched search must reproduce serial trial records exactly.
2. **Quick benchmarks** — run the latency benches with
   ``REPRO_BENCH_QUICK=1`` so a broken benchmark (import error, shape
   drift, harness change) fails CI instead of the next perf PR.
3. **Artifact schema** — ``BENCH_inference.json`` / ``BENCH_training.json``
   must parse and carry the gauges perf PRs diff against.

Exit status: 0 when everything holds, 1 otherwise.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import numpy as np

from repro.obs.logging import get_logger

logger = get_logger("perf_smoke")

#: Gauges every artifact must carry (the perf-trajectory contract).
REQUIRED_GAUGES = {
    "BENCH_inference.json": [
        "bench.inference.predict_next_mean_ms",
        "bench.inference.predict_series_per_interval_ms",
        "bench.inference.lstm_forward_64x48_mean_ms",
    ],
    "BENCH_training.json": [
        "bench.training.train_epoch_128x24_mean_ms",
        "bench.training.full_fit_serial_s",
    ],
}


def check_fastpath_parity() -> None:
    from repro.bayesopt import IntParam, FloatParam, RandomSearch, SearchSpace
    from repro.nn.gru import GRULayer
    from repro.nn.lstm import LSTMLayer

    rng = np.random.default_rng(0)
    for layer_cls in (LSTMLayer, GRULayer):
        for B, T, D, H in [(150, 14, 1, 9), (64, 48, 1, 32), (8, 5, 3, 4)]:
            layer = layer_cls(D, H, rng)
            x = rng.standard_normal((B, T, D))
            cached, _ = layer.forward(x)
            fast = layer.forward_inference(x)
            if not np.array_equal(cached, fast):
                raise AssertionError(
                    f"{layer_cls.__name__} fast path diverged at "
                    f"B={B} T={T} D={D} H={H}"
                )
            # Re-run on the warmed scratch: reuse must stay exact too.
            if not np.array_equal(cached, layer.forward_inference(x)):
                raise AssertionError(
                    f"{layer_cls.__name__} scratch reuse diverged"
                )
    logger.info("fast-path parity: OK")

    space = SearchSpace([IntParam("a", 1, 10), FloatParam("b", 0.0, 1.0)])
    objective = lambda c: (c["a"] - 3) ** 2 + (c["b"] - 0.4) ** 2  # noqa: E731
    serial = RandomSearch(space, seed=3)
    serial.run(objective, 6)
    space2 = SearchSpace([IntParam("a", 1, 10), FloatParam("b", 0.0, 1.0)])
    parallel = RandomSearch(space2, seed=3)
    parallel.run(objective, 6, n_workers=2)
    if [(r.config, r.value) for r in serial.history] != [
        (r.config, r.value) for r in parallel.history
    ]:
        raise AssertionError("parallel random search diverged from serial")
    logger.info("parallel search determinism: OK")


def run_quick_benchmarks(artifact_dir: Path) -> None:
    env = dict(os.environ)
    env["REPRO_BENCH_QUICK"] = "1"
    env["REPRO_BENCH_ARTIFACT_DIR"] = str(artifact_dir)
    env["PYTHONPATH"] = f"{ROOT / 'src'}{os.pathsep}{env.get('PYTHONPATH', '')}"
    cmd = [
        sys.executable, "-m", "pytest", "-x", "-q",
        "benchmarks/bench_inference_latency.py",
        "benchmarks/bench_training_latency.py",
    ]
    proc = subprocess.run(cmd, cwd=ROOT, env=env)
    if proc.returncode != 0:
        raise AssertionError("quick benchmarks failed")
    logger.info("quick benchmarks: OK")


def check_artifacts(artifact_dir: Path) -> None:
    """Validate the freshly-emitted artifacts and the committed ones."""
    for where in (artifact_dir, ROOT):
        for name, gauges in REQUIRED_GAUGES.items():
            path = where / name
            if not path.exists():
                raise AssertionError(f"{path} missing")
            data = json.loads(path.read_text())
            if data.get("schema") != 1:
                raise AssertionError(
                    f"{path}: unexpected schema {data.get('schema')!r}"
                )
            metrics = data.get("metrics", {})
            for gauge in gauges:
                snap = metrics.get(gauge)
                if snap is None:
                    raise AssertionError(f"{path}: missing metric {gauge}")
                if snap.get("kind") != "gauge" or not np.isfinite(
                    snap.get("value", np.nan)
                ):
                    raise AssertionError(f"{path}: bad snapshot for {gauge}: {snap}")
    logger.info("artifact schemas: OK")


def main() -> int:
    import tempfile

    check_fastpath_parity()
    with tempfile.TemporaryDirectory() as tmp:
        run_quick_benchmarks(Path(tmp))
        check_artifacts(Path(tmp))
    logger.info("perf smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
