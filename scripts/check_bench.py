#!/usr/bin/env python
"""Fail CI when a fresh benchmark run regresses the committed artifacts.

Compares candidate ``BENCH_*.json`` files (a directory of artifacts just
produced by the bench suites) against the committed baselines at the
repo root and exits non-zero when any shared metric moved in the *bad*
direction by more than ``--max-regression`` percent (default 25).

Direction is inferred from the metric name:

* higher is better: ``*_per_s``, ``*speedup*``, ``*hit_rate``
* lower is better:  ``*_ms``, ``*_s``, ``*_ms_*`` percentiles,
  ``*overhead_pct``
* anything else (interval counts, iteration counts) is informational —
  reported, never failed.

Under ``REPRO_BENCH_QUICK`` the ratio checks are skipped — quick-mode
numbers are harness validation, not signal — but the artifact schema is
still enforced, so a bench that stops emitting its gauges fails fast.

    python scripts/check_bench.py --candidate-dir "$BENCH_DIR"
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Artifacts using the flat ``{"schema": ..., "metrics": {...}}`` layout.
#: (BENCH_autoscale.json has its own scenario-grid schema and checker.)
COMPARABLE = ("BENCH_serving.json", "BENCH_search.json")

HIGHER_BETTER = ("_per_s", "speedup", "hit_rate")
LOWER_BETTER = ("_ms", "_s", "overhead_pct")


def direction(name: str) -> int:
    """+1 higher-better, -1 lower-better, 0 informational."""
    if any(name.endswith(sfx) or f"{sfx}_" in name for sfx in HIGHER_BETTER):
        return 1
    if any(name.endswith(sfx) or f"{sfx}_" in name for sfx in LOWER_BETTER):
        return -1
    return 0


def load_metrics(path: Path) -> dict[str, float]:
    """Validate the artifact schema and return ``{name: value}``."""
    doc = json.loads(path.read_text())
    if "metrics" not in doc or not isinstance(doc["metrics"], dict):
        raise ValueError(f"{path.name}: missing 'metrics' mapping")
    out: dict[str, float] = {}
    for name, snap in doc["metrics"].items():
        if not isinstance(snap, dict) or "value" not in snap:
            raise ValueError(f"{path.name}: metric {name} has no 'value'")
        value = snap["value"]
        if not isinstance(value, (int, float)) or not math.isfinite(value):
            raise ValueError(f"{path.name}: metric {name} is not finite: {value!r}")
        out[name] = float(value)
    if not out:
        raise ValueError(f"{path.name}: empty metrics mapping")
    return out


def compare(
    name: str, base: float, cand: float, max_regression_pct: float
) -> tuple[bool, str]:
    """``(regressed, human line)`` for one shared metric."""
    sign = direction(name)
    if sign == 0 or base == 0.0:
        return False, f"  ~ {name}: {base:g} -> {cand:g} (informational)"
    change_pct = 100.0 * (cand - base) / abs(base)
    bad = -sign * change_pct > max_regression_pct
    arrow = "REGRESSED" if bad else "ok"
    better = "higher" if sign > 0 else "lower"
    return bad, (
        f"  {'!' if bad else ' '} {name}: {base:g} -> {cand:g} "
        f"({change_pct:+.1f}%, {better} is better) [{arrow}]"
    )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--candidate-dir",
        required=True,
        type=Path,
        help="directory holding the freshly generated BENCH_*.json files",
    )
    ap.add_argument(
        "--baseline-dir",
        type=Path,
        default=ROOT,
        help="directory holding the committed baselines (default: repo root)",
    )
    ap.add_argument(
        "--max-regression",
        type=float,
        default=25.0,
        help="allowed percent move in the bad direction (default: 25)",
    )
    args = ap.parse_args()

    quick = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
    failures: list[str] = []
    checked = 0
    for fname in COMPARABLE:
        cand_path = args.candidate_dir / fname
        base_path = args.baseline_dir / fname
        if not cand_path.exists():
            print(f"[check-bench] {fname}: no candidate artifact, skipping")
            continue
        try:
            cand = load_metrics(cand_path)
        except ValueError as exc:
            failures.append(str(exc))
            continue
        print(f"[check-bench] {fname}: schema OK ({len(cand)} metrics)")
        if not base_path.exists():
            print(f"[check-bench] {fname}: no committed baseline, nothing to diff")
            continue
        try:
            base = load_metrics(base_path)
        except ValueError as exc:
            failures.append(f"baseline {exc}")
            continue
        if quick:
            print(f"[check-bench] {fname}: REPRO_BENCH_QUICK set, ratio checks skipped")
            continue
        for name in sorted(set(base) & set(cand)):
            bad, line = compare(name, base[name], cand[name], args.max_regression)
            print(line)
            checked += 1
            if bad:
                failures.append(f"{fname}: {line.strip()}")

    if failures:
        print(f"\n[check-bench] FAILED ({len(failures)} problem(s)):")
        for f in failures:
            print(f"  - {f}")
        return 1
    mode = "schema-only (quick)" if quick else f"{checked} metric(s) diffed"
    print(f"[check-bench] OK: {mode}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
