#!/usr/bin/env python
"""Record the seeded default BO path for acquisition-rewrite regression.

Runs :class:`repro.bayesopt.BayesianOptimizer` with its default
construction (full-refit surrogate, L-BFGS-B acquisition polish) on a
deterministic analytic objective over the paper's Table III space, and
records every suggested config and objective value to
``tests/data/bo_default_path.json``.

``tests/test_bayesopt_fixture.py`` replays the same seeds and asserts
the suggested configs are **bit-identical** — the guarantee that the
search-loop perf work (incremental surrogate, vectorized sweep
acquisition) never moved the default path.  Regenerate only when the
default proposal math is changed *on purpose*:

    PYTHONPATH=src python scripts/make_bo_fixture.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import numpy as np

from repro.bayesopt import BayesianOptimizer
from repro.core.config import search_space_for

OUT = ROOT / "tests" / "data" / "bo_default_path.json"

#: Seeds and trial budget of the recorded runs.  18 trials past the
#: 5 random initials leaves 13 GP-driven suggestions per run — enough to
#: exercise the surrogate fit, the candidate sweep, the polish, and the
#: duplicate-config fallback.
SEEDS = (0, 7)
N_ITERS = 18


def analytic_objective(space, config: dict) -> float:
    """Deterministic multimodal test function on the unit cube.

    Must match ``tests/test_bayesopt_fixture.py`` exactly.
    """
    u = space.to_unit(config)
    return float(np.sum((u - 0.37) ** 2) + 0.05 * np.sum(np.sin(10.0 * u)))


def record(seed: int) -> dict:
    space = search_space_for("default", "paper")
    opt = BayesianOptimizer(space, seed=seed)
    best = opt.run(lambda c: analytic_objective(space, c), N_ITERS)
    return {
        "seed": seed,
        "n_iters": N_ITERS,
        "trials": [
            {"iteration": r.iteration, "config": r.config, "value": r.value}
            for r in opt.history
        ],
        "best_config": best.config,
        "best_value": best.value,
    }


def main() -> None:
    fixture = {
        "space": "search_space_for('default', 'paper')",
        "runs": [record(seed) for seed in SEEDS],
    }
    OUT.write_text(json.dumps(fixture, indent=2) + "\n", encoding="utf-8")
    for run in fixture["runs"]:
        print(
            f"seed={run['seed']}: {len(run['trials'])} trials, "
            f"best={run['best_value']:.6f} @ {run['best_config']}"
        )
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
