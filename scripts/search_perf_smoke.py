#!/usr/bin/env python
"""CI smoke: the incremental search loop keeps its refit budget and answer.

Runs a tiny incremental+sweep Bayesian-optimization loop and asserts,
from the ``gp.refit.full`` / ``gp.refit.rank1`` counters, that ``tell``
never triggered more full surrogate refits than the ``reopt_every``
schedule allows — the regression this guards against is an accidental
cache-invalidation bug quietly refitting O(n^3) every iteration while
all functional tests stay green.  Then re-checks rank-1/full posterior
parity at the GP level (rtol=1e-9), so a numerics regression can't hide
behind a healthy refit count.

Exit code 0 on success; prints the counter arithmetic either way.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import numpy as np

from repro.bayesopt import BayesianOptimizer
from repro.core.config import search_space_for
from repro.gp import GaussianProcessRegressor, Matern52
from repro.obs import metrics as _metrics

N_INITIAL = 2
N_ITERS = 12
REOPT_EVERY = 3


def counter(name: str) -> float:
    return _metrics.counter(name).value


def check_refit_schedule() -> None:
    """The K-periodic expectation, exactly.

    Trials ``N_INITIAL .. N_ITERS-1`` are GP-backed: each suggests off a
    surrogate and each tell absorbs one observation.  With
    ``reopt_every=K``, every Kth GP-backed tell drops the surrogate
    (full refit at the next suggest) and the rest are rank-1 appends:

      gp_tells = N_ITERS - N_INITIAL
      full     = ceil(gp_tells / K)      (one initial fit + one per drop
                                          that is followed by a suggest)
      rank1    = gp_tells - floor(gp_tells / K)
    """
    space = search_space_for("default", "paper")
    opt = BayesianOptimizer(
        space,
        seed=5,
        n_initial=N_INITIAL,
        incremental=True,
        reopt_every=REOPT_EVERY,
    )

    def objective(config: dict) -> float:
        u = space.to_unit(config)
        return float(np.sum((u - 0.42) ** 2) + 0.03 * np.sum(np.cos(7.0 * u)))

    full0, rank0 = counter("gp.refit.full"), counter("gp.refit.rank1")
    opt.run(objective, N_ITERS)
    full = counter("gp.refit.full") - full0
    rank1 = counter("gp.refit.rank1") - rank0

    gp_tells = N_ITERS - N_INITIAL
    want_full = -(-gp_tells // REOPT_EVERY)  # ceil
    want_rank1 = gp_tells - gp_tells // REOPT_EVERY
    print(
        f"[search-perf-smoke] {N_ITERS} iters, reopt_every={REOPT_EVERY}: "
        f"full={full:.0f} (budget {want_full}), rank1={rank1:.0f} "
        f"(expected {want_rank1})"
    )
    assert rank1 > 0, "incremental mode never took a rank-1 update"
    assert full <= want_full, (
        f"tell triggered {full:.0f} full refits; the reopt_every="
        f"{REOPT_EVERY} schedule allows at most {want_full} — something "
        "is invalidating the persistent surrogate every iteration"
    )
    assert rank1 >= want_rank1, (
        f"only {rank1:.0f} rank-1 updates (expected {want_rank1}); "
        "tells are falling back to full refits"
    )


def check_posterior_parity() -> None:
    """Rank-1 appends describe the same posterior as a full refit."""
    rng = np.random.default_rng(17)
    n0, n, d = 12, 24, 4

    def make_gp():
        return GaussianProcessRegressor(
            kernel=Matern52(ard=True, n_dims=d, lengthscale=0.3),
            noise=1e-4,
            optimize=False,
        )

    X = rng.uniform(size=(n, d))
    y = rng.normal(size=n)
    inc, ref = make_gp(), make_gp()
    inc.fit(X[:n0], y[:n0])
    for i in range(n0, n):
        inc.update(X[i], y[i])
    ref.fit(X, y)
    Xq = rng.uniform(size=(32, d))
    mu_i, sd_i = inc.predict(Xq, return_std=True)
    mu_r, sd_r = ref.predict(Xq, return_std=True)
    np.testing.assert_allclose(mu_i, mu_r, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(sd_i, sd_r, rtol=1e-9, atol=1e-12)
    print(f"[search-perf-smoke] posterior parity OK over {n - n0} appends")


def main() -> int:
    check_refit_schedule()
    check_posterior_parity()
    print("[search-perf-smoke] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
