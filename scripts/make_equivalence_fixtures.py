#!/usr/bin/env python
"""Record the default-path (LSTM) behaviour of a seeded LoadDynamics fit.

The model-family refactor must keep ``family="lstm"`` — the default —
bit-for-bit identical to the monolithic pre-refactor framework: same
suggested configs, same objective values, same journal records.  This
script runs one seeded tiny fit through the *public* API and freezes:

* ``tests/data/equivalence_lstm.json`` — per-trial configs/values plus
  the selected hyperparameters (deterministic metadata only; wall-clock
  keys are excluded);
* ``tests/data/prerefactor_journal_full.jsonl`` — the trial journal the
  run wrote;
* ``tests/data/prerefactor_journal_partial.jsonl`` — the same journal
  truncated after 3 trials, simulating a crash mid-run (the resume
  regression test continues it and must reproduce the full run).

It only uses the stable public surface, so re-running it under any
refactor that claims default-path equivalence must reproduce the
committed fixtures byte-for-byte (modulo the header timestamp and
wall-clock metadata).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import FrameworkSettings, LoadDynamics, search_space_for  # noqa: E402
from repro.obs.logging import get_logger  # noqa: E402

logger = get_logger("scripts.fixtures")

#: Trial-metadata keys that are deterministic for a fixed seed (wall
#: clock timings and GP diagnostics are not).
DETERMINISTIC_META = (
    "epochs_run",
    "stopped_early",
    "best_epoch",
    "n_train_windows",
    "attempts",
    "infeasible",
    "reason",
)

MAX_ITERS = 6
PARTIAL_TRIALS = 3


def fixture_series() -> np.ndarray:
    """The conftest ``sine_series``: seeded sinusoid + noise, length 240."""
    t = np.arange(240)
    rng = np.random.default_rng(7)
    return 100.0 + 40.0 * np.sin(2 * np.pi * t / 24.0) + rng.normal(0, 2.0, 240)


def trial_snapshot(trial) -> dict:
    meta = {k: trial.metadata[k] for k in DETERMINISTIC_META if k in trial.metadata}
    return {
        "iteration": trial.iteration,
        "config": dict(trial.config),
        "value": trial.value,
        "metadata": meta,
    }


def main() -> int:
    data_dir = Path(__file__).resolve().parent.parent / "tests" / "data"
    data_dir.mkdir(parents=True, exist_ok=True)
    journal_path = data_dir / "prerefactor_journal_full.jsonl"

    ld = LoadDynamics(
        space=search_space_for("default", "tiny"),
        settings=FrameworkSettings.tiny(max_iters=MAX_ITERS),
    )
    predictor, report = ld.fit(fixture_series(), journal=journal_path)

    fixture = {
        "max_iters": MAX_ITERS,
        "partial_trials": PARTIAL_TRIALS,
        "best_hyperparameters": report.best_hyperparameters.as_dict(),
        "best_validation_mape": report.best_validation_mape,
        "trials": [trial_snapshot(t) for t in report.trials],
    }
    (data_dir / "equivalence_lstm.json").write_text(
        json.dumps(fixture, indent=2) + "\n"
    )

    # Truncate the journal after PARTIAL_TRIALS completed trials — the
    # shape a SIGKILL at trial 4 leaves behind.
    lines = journal_path.read_text().splitlines(keepends=True)
    (data_dir / "prerefactor_journal_partial.jsonl").write_text(
        "".join(lines[: 1 + PARTIAL_TRIALS])
    )

    logger.info(
        "fixtures written to %s (%d trials, best MAPE %.4f%%)",
        data_dir, report.n_trials, report.best_validation_mape,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
