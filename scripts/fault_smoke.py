#!/usr/bin/env python
"""CI smoke stage: every injected fault class must degrade, never crash.

Runs one tiny LoadDynamics fit per fault kind (see
:mod:`repro.resilience.faults`) and asserts the documented recovery
behaviour:

* ``nan_loss@nn.fit`` — every training diverges; the fit returns a
  degraded naive-fallback report instead of raising (env-driven path);
* ``linalg@gp.fit`` — the GP surrogate fails every iteration; BO
  degrades to random suggestions and still completes all trials;
* ``slow@nn.fit`` + ``--trial-timeout`` — slow trials are recorded
  infeasible with reason ``trial_timeout``;
* ``kill@objective`` + journal — the run dies mid-flight, then resumes
  from the journal and finishes with the journaled trials replayed.

Exit status: 0 when every scenario recovers as specified, 1 otherwise.
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import obs
from repro.core import FrameworkSettings, LoadDynamics, search_space_for
from repro.obs.logging import get_logger
from repro.resilience import SimulatedCrash, TrialJournal, faults

logger = get_logger("fault_smoke")


def _series() -> np.ndarray:
    x = np.arange(240.0)
    return np.abs(np.sin(x / 12)) * 400 + 100 + 10 * np.cos(x / 5)


def _fit(series, *, faults_spec=None, env_spec=None, **settings_overrides):
    settings = FrameworkSettings.tiny(**settings_overrides)
    ld = LoadDynamics(space=search_space_for("default", "tiny"), settings=settings)
    if env_spec is not None:
        os.environ[faults.FAULTS_ENV] = env_spec
        faults.clear_injector()
        try:
            return ld.fit(series)
        finally:
            del os.environ[faults.FAULTS_ENV]
            faults.clear_injector()
    if faults_spec is not None:
        with faults.injected(faults_spec):
            return ld.fit(series)
    return ld.fit(series)


def smoke_nan_loss(series) -> None:
    """Divergence guard + retry + all-infeasible degradation (env path)."""
    _, report = _fit(series, env_spec="nan_loss@nn.fit:*", max_iters=3)
    assert report.degraded, "all-diverged run must return a degraded report"
    assert report.degraded_reason == "no_feasible_trials"
    assert all(
        t.metadata.get("reason") == "training_diverged" for t in report.trials
    ), "every trial must be recorded as diverged"


def smoke_gp_linalg(series) -> None:
    """Surrogate failure must fall back to random suggestions, not abort."""
    _, report = _fit(series, faults_spec="linalg@gp.fit:*", max_iters=4)
    assert not report.degraded, "GP failure must not degrade the whole fit"
    assert report.n_trials == 4
    assert report.telemetry["n_degraded_suggests"] >= 1


def smoke_trial_timeout(series) -> None:
    """A slow trial must be cut off at the deadline and recorded."""
    _, report = _fit(
        series,
        faults_spec="slow@nn.fit:*=0.05",
        max_iters=2,
        trial_timeout_s=0.02,
    )
    assert report.degraded
    assert all(
        t.metadata.get("reason") == "trial_timeout" for t in report.trials
    ), "slow trials must be recorded with reason trial_timeout"


def smoke_kill_and_resume(series) -> None:
    """Crash mid-run, resume from the journal, finish the budget."""
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "smoke.jsonl"
        ld = LoadDynamics(
            space=search_space_for("default", "tiny"),
            settings=FrameworkSettings.tiny(max_iters=3),
        )
        try:
            with faults.injected("kill@objective:2"):
                ld.fit(series, journal=journal)
        except SimulatedCrash:
            logger.info("simulated crash landed as planned")
        else:
            raise AssertionError("kill fault did not fire")
        _, trials = TrialJournal.load(journal)
        assert len(trials) == 1, "one trial must have survived the crash"

        ld2 = LoadDynamics(
            space=search_space_for("default", "tiny"),
            settings=FrameworkSettings.tiny(max_iters=3),
        )
        _, report = ld2.fit(series, journal=journal, resume=True)
        assert report.n_resumed == 1
        assert report.n_trials == 3
        assert not report.degraded


SCENARIOS = (
    smoke_nan_loss,
    smoke_gp_linalg,
    smoke_trial_timeout,
    smoke_kill_and_resume,
)


def main() -> int:
    obs.configure_logging("INFO")
    series = _series()
    failed = 0
    for scenario in SCENARIOS:
        try:
            scenario(series)
        except AssertionError as exc:
            logger.error("FAIL %s: %s", scenario.__name__, exc)
            failed += 1
        except Exception:
            logger.exception("CRASH %s (fault escaped the recovery path)",
                             scenario.__name__)
            failed += 1
        else:
            logger.info("ok %s", scenario.__name__)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
