#!/usr/bin/env python
"""CI smoke stage: every injected fault class must degrade, never crash.

Runs one tiny LoadDynamics fit per fault kind (see
:mod:`repro.resilience.faults`) and asserts the documented recovery
behaviour:

* ``nan_loss@nn.fit`` — every training diverges; the fit returns a
  degraded naive-fallback report instead of raising (env-driven path);
* ``linalg@gp.fit`` — the GP surrogate fails every iteration; BO
  degrades to random suggestions and still completes all trials;
* ``slow@nn.fit`` + ``--trial-timeout`` — slow trials are recorded
  infeasible with reason ``trial_timeout``;
* ``kill@objective`` + journal — the run dies mid-flight, then resumes
  from the journal and finishes with the journaled trials replayed;
* ``nan@serve.predict`` / ``boom@serve.predict`` — guarded serving sheds
  the sick model to the fallback chain (and trips the breaker);
* ``boom@adaptive.refit`` — a crashing refit keeps the incumbent model;
* ``drift@serve.predict`` — a latched level shift in the served forecast
  must fire the ``repro.obs.monitor`` drift detectors within a bounded
  delay and degrade the health verdict;
* ``corrupt@model.load`` + real truncation — loading surfaces a typed
  ``CorruptModelError`` or degrades to the fallback chain;
* ``boom@serve.predict`` under the hybrid controller — a dead forecast
  path opens the breaker and provisioning visibly shifts to the
  reactive tier (``decided_by``), never crashing the schedule;
* a drift-latched detector shared with the controller — burst mode
  engages while forecasts underpredict and clears (resetting the
  detector) once provisioning is adequate again;
* ``kill@stream.chunk`` + ``--resume`` — a streamed serve dies
  mid-chunk, resumes from the latest checkpoint, and produces a
  bit-for-bit identical schedule and report;
* ``stall@stream.chunk`` — a stalled feed degrades to hold-last for
  exactly the stalled intervals, then recovers to normal serving.

Exit status: 0 when every scenario recovers as specified, 1 otherwise.
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import obs
from repro.core import FrameworkSettings, LoadDynamics, search_space_for
from repro.obs.logging import get_logger
from repro.resilience import SimulatedCrash, TrialJournal, faults

logger = get_logger("fault_smoke")


def _series() -> np.ndarray:
    x = np.arange(240.0)
    return np.abs(np.sin(x / 12)) * 400 + 100 + 10 * np.cos(x / 5)


def _fit(series, *, faults_spec=None, env_spec=None, **settings_overrides):
    settings = FrameworkSettings.tiny(**settings_overrides)
    ld = LoadDynamics(space=search_space_for("default", "tiny"), settings=settings)
    if env_spec is not None:
        os.environ[faults.FAULTS_ENV] = env_spec
        faults.clear_injector()
        try:
            return ld.fit(series)
        finally:
            del os.environ[faults.FAULTS_ENV]
            faults.clear_injector()
    if faults_spec is not None:
        with faults.injected(faults_spec):
            return ld.fit(series)
    return ld.fit(series)


def smoke_nan_loss(series) -> None:
    """Divergence guard + retry + all-infeasible degradation (env path)."""
    _, report = _fit(series, env_spec="nan_loss@nn.fit:*", max_iters=3)
    assert report.degraded, "all-diverged run must return a degraded report"
    assert report.degraded_reason == "no_feasible_trials"
    assert all(
        t.metadata.get("reason") == "training_diverged" for t in report.trials
    ), "every trial must be recorded as diverged"


def smoke_gp_linalg(series) -> None:
    """Surrogate failure must fall back to random suggestions, not abort."""
    _, report = _fit(series, faults_spec="linalg@gp.fit:*", max_iters=4)
    assert not report.degraded, "GP failure must not degrade the whole fit"
    assert report.n_trials == 4
    assert report.telemetry["n_degraded_suggests"] >= 1


def smoke_trial_timeout(series) -> None:
    """A slow trial must be cut off at the deadline and recorded."""
    _, report = _fit(
        series,
        faults_spec="slow@nn.fit:*=0.05",
        max_iters=2,
        trial_timeout_s=0.02,
    )
    assert report.degraded
    assert all(
        t.metadata.get("reason") == "trial_timeout" for t in report.trials
    ), "slow trials must be recorded with reason trial_timeout"


def smoke_kill_and_resume(series) -> None:
    """Crash mid-run, resume from the journal, finish the budget."""
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "smoke.jsonl"
        ld = LoadDynamics(
            space=search_space_for("default", "tiny"),
            settings=FrameworkSettings.tiny(max_iters=3),
        )
        try:
            with faults.injected("kill@objective:2"):
                ld.fit(series, journal=journal)
        except SimulatedCrash:
            logger.info("simulated crash landed as planned")
        else:
            raise AssertionError("kill fault did not fire")
        _, trials = TrialJournal.load(journal)
        assert len(trials) == 1, "one trial must have survived the crash"

        ld2 = LoadDynamics(
            space=search_space_for("default", "tiny"),
            settings=FrameworkSettings.tiny(max_iters=3),
        )
        _, report = ld2.fit(series, journal=journal, resume=True)
        assert report.n_resumed == 1
        assert report.n_trials == 3
        assert not report.degraded


def smoke_serving_nan_prediction(series) -> None:
    """NaN forecasts must be shed to the fallback chain, never served."""
    from repro.baselines import LastValuePredictor, walk_forward
    from repro.serving import GuardedPredictor, default_fallbacks

    guarded = GuardedPredictor(
        LastValuePredictor(), fallbacks=default_fallbacks(24)
    )
    with faults.injected("nan@serve.predict:*"):
        preds = walk_forward(guarded, series, 200, 230)
    assert np.all(np.isfinite(preds)) and np.all(preds >= 0)
    assert guarded.served_by.get("primary", 0) == 0, \
        "a NaN forecast must never be served as the primary's"
    assert sum(guarded.served_by.values()) == 30, "every interval must be served"


def smoke_serving_breaker(series) -> None:
    """A persistently crashing model must trip the breaker and be shed."""
    from repro.baselines import LastValuePredictor, walk_forward
    from repro.serving import OPEN, GuardedPredictor

    guarded = GuardedPredictor(LastValuePredictor())
    with faults.injected("boom@serve.predict:*"):
        preds = walk_forward(guarded, series, 200, 230)
    assert np.all(np.isfinite(preds))
    assert guarded.breaker.state == OPEN, "breaker must open under sustained failure"
    assert any(t[1] == OPEN for t in guarded.breaker.transitions)


def smoke_refit_crash(series) -> None:
    """A crashing drift-triggered refit keeps the incumbent model serving."""
    from repro.baselines import walk_forward
    from repro.core import AdaptiveLoadDynamics

    shifted = np.concatenate([series[:120], series[:120] * 8 + 500])
    adaptive = AdaptiveLoadDynamics(
        space=search_space_for("default", "tiny"),
        settings=FrameworkSettings.tiny(max_iters=2, epochs=4),
        drift_window=4,
        drift_factor=1.5,
        min_refit_gap=10,
        refit_retries=0,
    )
    with faults.injected("boom@adaptive.refit:2"):
        preds = walk_forward(adaptive, shifted, 100, 160)
    assert np.all(np.isfinite(preds))
    assert adaptive.predictor is not None, "incumbent model must survive the crash"
    assert adaptive.failed_refits >= 1, "the failed refit must be recorded"


def smoke_drift_detection(series) -> None:
    """An injected serving-side drift must latch the monitor's detectors."""
    from repro.baselines import LastValuePredictor
    from repro.obs.monitor import ForecastMonitor
    from repro.serving import GuardedPredictor, serve_and_simulate

    monitor = ForecastMonitor()
    guarded = GuardedPredictor(LastValuePredictor())
    # Calibration needs a stationary pre-fault error stream: a slow
    # cycle + mild noise keeps persistence APE at a steady ~2%, so the
    # only regime change the detectors can see is the injected one.
    rng = np.random.default_rng(42)
    x = np.arange(240.0)
    steady = np.abs(np.sin(x / 288.0)) * 400 + 300 + rng.normal(0, 5, 240)
    # The served forecast shifts x4 from invocation 60 onward while the
    # actuals stay put — exactly the silent failure mode the detectors
    # exist to catch.
    with faults.injected("drift@serve.predict:60=4"):
        report = serve_and_simulate(guarded, steady, 120, monitor=monitor)
    assert report.drifted, "injected drift must latch a detector"
    fired = [d for d in report.drift if d["drifted"]]
    assert any(
        d["fired_at"] is not None and 60 <= d["fired_at"] <= 100 for d in fired
    ), f"detectors must fire within a bounded delay of the shift: {fired}"
    assert report.health["status"] != "healthy", \
        "a latched drift detector must degrade the health verdict"


def smoke_corrupt_model(series) -> None:
    """Corrupted predictor directories raise typed errors / degrade cleanly."""
    from repro.core import LSTMHyperparameters, LoadDynamicsPredictor, MinMaxScaler
    from repro.core.predictor import NaiveLastValueModel
    from repro.serving import CorruptModelError, GuardedPredictor

    with tempfile.TemporaryDirectory() as tmp:
        predictor = LoadDynamicsPredictor(
            model=NaiveLastValueModel(),
            scaler=MinMaxScaler().fit(series),
            hyperparameters=LSTMHyperparameters(1, 1, 1, 1),
            family="naive",
        )
        directory = predictor.save(Path(tmp) / "model")

        # Injected disk corruption on an intact directory.
        try:
            with faults.injected("corrupt@model.load:*"):
                GuardedPredictor.load(directory)
        except CorruptModelError:
            pass
        else:
            raise AssertionError("corrupt@model.load must raise CorruptModelError")

        # Real on-disk truncation of the manifest.
        manifest = directory / "predictor.json"
        manifest.write_text(manifest.read_text()[: 40])
        try:
            GuardedPredictor.load(directory)
        except CorruptModelError:
            pass
        else:
            raise AssertionError("truncated manifest must raise CorruptModelError")

        guarded = GuardedPredictor.load(directory, on_corrupt="fallback")
        assert guarded.primary is None
        p = guarded.predict_next(series)
        assert np.isfinite(p) and p >= 0, "fallback chain must still serve"


def smoke_controller_reactive_takeover(series) -> None:
    """Forecast outage: the hybrid controller must go reactive, not down."""
    from repro.autoscale import HybridPolicy
    from repro.baselines import LastValuePredictor
    from repro.serving import OPEN, GuardedPredictor

    guarded = GuardedPredictor(LastValuePredictor())
    policy = HybridPolicy(guarded)
    with faults.injected("boom@serve.predict:*"):
        schedule = policy.schedule(series, 200)
    assert np.all(np.isfinite(schedule)) and np.all(schedule >= 0), \
        "the schedule must stay finite through a total forecast outage"
    assert guarded.breaker.state == OPEN, "sustained crashes must open the breaker"
    ctl = policy.controller
    assert ctl.decided_by.get("reactive", 0) > 0, \
        "an open breaker must shift decisions to the reactive tier"
    assert ctl.decided_by.get("reactive", 0) >= ctl.decided_by.get("hybrid", 0), \
        "reactive provenance must dominate once the breaker is open"


def smoke_controller_burst(series) -> None:
    """Drift latch -> burst engages; healthy provisioning -> burst clears."""
    from repro.autoscale import ControllerConfig, HybridController
    from repro.obs.monitor import PageHinkleyDetector

    # Page-Hinkley fires on error *increase* only, so the post-clear
    # reset recalibrates quietly — the latch/clear cycle is exact.
    detector = PageHinkleyDetector()
    controller = HybridController(
        ControllerConfig(burst_streak=None, burst_clear=5),
        drift_detector=detector,
    )
    arrivals = np.full(100, 100.0)
    # Phase 1 (accurate), phase 2 (forecasts silently at 40% -> detector
    # fires, burst latches), phase 3 (accurate again -> burst clears).
    for i in range(1, arrivals.size):
        forecast = 100.0 * (0.4 if 20 <= i < 50 else 1.0)
        controller.step(forecast, arrivals[:i])
    assert controller.burst_episodes == 1, \
        f"burst must latch exactly once, got {controller.burst_episodes}"
    assert controller.burst_reason is None and not controller.burst, \
        "burst must clear after sustained adequate provisioning"
    assert not detector.drifted, \
        "clearing burst must reset the still-latched drift detector"


def _stream_serve(series, start, *, ckpt, resume=False, faults_spec=None,
                  deadline_s=None):
    from repro.obs.metrics import reset_metrics
    from repro.obs.monitor import ForecastMonitor
    from repro.serving import (
        GuardedPredictor,
        StreamConfig,
        TraceSanitizer,
        default_fallbacks,
        serve_and_simulate,
    )

    reset_metrics()  # counter parity needs a fresh registry per run
    guarded = GuardedPredictor(None, fallbacks=default_fallbacks(24))
    cfg = StreamConfig(
        chunk_size=16, size_jitter=4, seed=5, checkpoint_every=2,
        checkpoint_dir=ckpt, resume=resume, deadline_s=deadline_s,
    )
    kwargs = dict(
        monitor=ForecastMonitor(), stream=cfg,
        sanitizer=TraceSanitizer(policy="interpolate"),
    )
    if faults_spec is not None:
        with faults.injected(faults_spec):
            return serve_and_simulate(guarded, series, start, **kwargs)
    return serve_and_simulate(guarded, series, start, **kwargs)


def smoke_stream_kill_resume(series) -> None:
    """Kill a streamed serve mid-chunk; resume must be bit-for-bit."""
    with tempfile.TemporaryDirectory() as tmp:
        ref = _stream_serve(series, 120, ckpt=str(Path(tmp) / "ref"))
        crash_dir = str(Path(tmp) / "crash")
        try:
            _stream_serve(series, 120, ckpt=crash_dir,
                          faults_spec="kill@stream.chunk:5")
        except SimulatedCrash:
            logger.info("simulated stream crash landed as planned")
        else:
            raise AssertionError("kill@stream.chunk did not fire")
        assert (Path(crash_dir) / "checkpoint.json").exists(), \
            "the crashed run must have left a checkpoint behind"
        resumed = _stream_serve(series, 120, ckpt=crash_dir, resume=True)
        assert resumed.schedule.tobytes() == ref.schedule.tobytes(), \
            "resumed schedule must be bit-for-bit identical"
        assert resumed.serving_counters == ref.serving_counters, \
            "resumed serving counters must match the uninterrupted run"
        assert resumed.result.vm_seconds == ref.result.vm_seconds


def smoke_stream_stall(series) -> None:
    """A stalled feed must degrade to hold-last, then recover in place."""
    with tempfile.TemporaryDirectory() as tmp:
        report = _stream_serve(
            series, 120, ckpt=str(Path(tmp) / "ck"), deadline_s=30.0,
            faults_spec="stall@stream.chunk:3=120",
        )
        stalls = report.stream["stalls"]
        assert len(stalls) == 1, f"exactly one stall expected, got {stalls}"
        stall = stalls[0]
        assert stall["gap_s"] > stall["deadline_s"]
        assert report.stream["held_intervals"] == stall["intervals_held"] > 0
        held = report.schedule[
            stall["offset"] : stall["offset"] + stall["intervals_held"]
        ]
        assert np.all(held == held[0]), "stalled intervals must hold last"
        assert report.stream["served_intervals"] == (
            report.stream["intervals"] - stall["intervals_held"]
        ), "serving must recover to normal after the stall"
        assert np.all(np.isfinite(report.schedule))


SCENARIOS = (
    smoke_nan_loss,
    smoke_gp_linalg,
    smoke_trial_timeout,
    smoke_kill_and_resume,
    smoke_serving_nan_prediction,
    smoke_serving_breaker,
    smoke_refit_crash,
    smoke_drift_detection,
    smoke_corrupt_model,
    smoke_controller_reactive_takeover,
    smoke_controller_burst,
    smoke_stream_kill_resume,
    smoke_stream_stall,
)


def main() -> int:
    obs.configure_logging("INFO")
    series = _series()
    failed = 0
    for scenario in SCENARIOS:
        try:
            scenario(series)
        except AssertionError as exc:
            logger.error("FAIL %s: %s", scenario.__name__, exc)
            failed += 1
        except Exception:
            logger.exception("CRASH %s (fault escaped the recovery path)",
                             scenario.__name__)
            failed += 1
        else:
            logger.info("ok %s", scenario.__name__)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
