#!/usr/bin/env python3
"""Splice measured tables from bench_output.txt into EXPERIMENTS.md.

Looks for the ``[Fig. 9]`` and ``[Fig. 10]`` sections the benchmark
harness prints, converts them to fenced blocks, and replaces the
``<!-- FIG9_TABLE -->`` / ``<!-- FIG10_TABLE -->`` markers.
Idempotent: markers are kept as HTML comments next to the tables so the
script can be re-run after a fresh bench run.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def extract_table(text: str, header: str) -> str | None:
    """Grab the aligned table printed right after ``header``."""
    idx = text.find(header)
    if idx < 0:
        return None
    lines = text[idx:].splitlines()[1:]
    table: list[str] = []
    for line in lines:
        if not line.strip():
            if table:
                break
            continue
        # Stop at the next pytest marker / section.
        if line.startswith((".", "[", "=", "-----------------------------")) and table:
            break
        table.append(line.rstrip())
    return "\n".join(table) if table else None


def main() -> int:
    bench = (ROOT / "bench_output.txt").read_text()
    exp_path = ROOT / "EXPERIMENTS.md"
    doc = exp_path.read_text()

    replacements = {
        "<!-- FIG9_TABLE -->": extract_table(bench, "[Fig. 9]"),
        "<!-- FIG10_TABLE -->": extract_table(bench, "[Fig. 10]"),
    }
    for marker, table in replacements.items():
        if table is None:
            print(f"warning: no table found for {marker}", file=sys.stderr)
            continue
        block = f"{marker}\n```\n{table}\n```"
        # Replace the marker plus any previously spliced block after it.
        pattern = re.escape(marker) + r"(\n```\n.*?\n```)?"
        doc = re.sub(pattern, lambda _m: block, doc, count=1, flags=re.DOTALL)
    exp_path.write_text(doc)
    print("EXPERIMENTS.md updated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
