#!/usr/bin/env bash
# Single CI entrypoint: lint + tier-1 test suite.
#
#   scripts/ci.sh            # everything
#   scripts/ci.sh --lint     # lint only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint: no bare print() in src/repro =="
python scripts/check_no_bare_print.py

echo "== lint: import layering (substrate/models/core/apps DAG) =="
python scripts/check_layering.py

if [[ "${1:-}" == "--lint" ]]; then
    exit 0
fi

echo "== tier-1 tests =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q

echo "== fault-injection smoke =="
python scripts/fault_smoke.py

echo "== perf smoke (fast-path parity + quick benchmarks) =="
python scripts/perf_smoke.py

echo "== search-perf smoke (incremental surrogate refit budget + parity) =="
python scripts/search_perf_smoke.py

echo "== model-family smoke (non-default family end to end) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli fit gl-30m \
    --budget tiny --family gru --max-iters 2 --epochs 3

echo "== multivariate smoke (D=3 correlated trace end to end) =="
MV_DIR="$(mktemp -d)"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli fit mv-30m \
    --budget tiny --family lstm --max-iters 2 --epochs 2 \
    --channels requests,cpu,memory --target-channel 1 \
    --save "$MV_DIR/model"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli simulate mv-30m \
    --guarded --monitor --repair interpolate --target-channel 1 \
    --model-dir "$MV_DIR/model" --start-frac 0.9
rm -rf "$MV_DIR"

echo "== serving chaos (guarded simulate must survive injected faults) =="
SERVE_DIR="$(mktemp -d)"
BENCH_DIR="$(mktemp -d)"
trap 'rm -rf "$SERVE_DIR" "$BENCH_DIR"' EXIT
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli fit fb-10m \
    --budget tiny --max-iters 2 --epochs 3 --save "$SERVE_DIR/model"
REPRO_FAULTS="nan@serve.predict:*" \
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli simulate \
    fb-10m --guarded --model-dir "$SERVE_DIR/model"
REPRO_FAULTS="corrupt@model.load:1" \
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli simulate \
    fb-10m --guarded --model-dir "$SERVE_DIR/model"

echo "== streaming chaos (kill mid-stream; resume must be bit-for-bit) =="
STREAM_ARGS=(stream fb-10m --model-dir "$SERVE_DIR/model" --chunk-size 8
    --checkpoint-every 1 --deadline-s 7200 --monitor)
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli \
    "${STREAM_ARGS[@]}" --checkpoint-dir "$SERVE_DIR/ck-ref" \
    --report-out "$SERVE_DIR/ref.json"
if REPRO_FAULTS="kill@stream.chunk:3" \
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli \
    "${STREAM_ARGS[@]}" --checkpoint-dir "$SERVE_DIR/ck" \
    --report-out "$SERVE_DIR/crashed.json" 2>/dev/null; then
    echo "streaming chaos FAILED: injected kill did not crash the stream"
    exit 1
fi
[[ ! -e "$SERVE_DIR/crashed.json" ]] \
    || { echo "streaming chaos FAILED: crashed run wrote a report"; exit 1; }
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli \
    "${STREAM_ARGS[@]}" --checkpoint-dir "$SERVE_DIR/ck" --resume \
    --report-out "$SERVE_DIR/resumed.json"
python - "$SERVE_DIR/ref.json" "$SERVE_DIR/resumed.json" <<'PYEOF'
import json, sys
ref, res = (json.load(open(p)) for p in sys.argv[1:3])
assert ref["schedule_hex"] == res["schedule_hex"], \
    "provisioning schedule diverged after resume"
assert ref == res, "resumed ServingReport is not bit-for-bit identical"
print("streaming chaos OK: resume bit-for-bit identical "
      f"({len(ref['schedule_hex']) // 16} intervals)")
PYEOF

echo "== monitoring smoke (injected serving drift must fire detectors + refit) =="
MON_OUT="$(REPRO_FAULTS='drift@serve.predict:60=4' \
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli simulate \
    gl-30m --adaptive --monitor --slo-mape 60 \
    --budget tiny --max-iters 2 --epochs 3)"
printf '%s\n' "$MON_OUT"
grep -q "FIRED" <<<"$MON_OUT" \
    || { echo "monitoring smoke FAILED: no drift detector fired"; exit 1; }
grep -qE "drift-triggered refits: [1-9]" <<<"$MON_OUT" \
    || { echo "monitoring smoke FAILED: no drift-triggered refit"; exit 1; }

echo "== autoscale-chaos (hybrid must survive faults + flash crowds) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli autoscale --quick
REPRO_BENCH_QUICK=1 REPRO_BENCH_ARTIFACT_DIR="$BENCH_DIR" \
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q \
    benchmarks/bench_autoscale_chaos.py
python - "$BENCH_DIR/BENCH_autoscale.json" <<'PYEOF'
import json, math, sys
cells = json.load(open(sys.argv[1]))["scenarios"]
for scenario in ("steady", "flash_crowd", "regime_shift", "corruption",
                 "nan_flash", "drift_fault"):
    for policy in ("predictive", "reactive", "hybrid"):
        row = cells[scenario]["policies"][policy]
        assert math.isfinite(row["underprovision_rate_pct"]), (scenario, policy)
row = cells["nan_flash"]["policies"]["hybrid"]
assert row["underprovision_rate_pct"] <= 15.0, \
    f"hybrid under injected nan + flash crowd: {row['underprovision_rate_pct']:.2f}% underprovision"
assert row["controller"]["decided_by"].get("reactive", 0) > 0, \
    "open breaker must shift hybrid provenance to the reactive tier"
print("BENCH_autoscale.json schema OK")
PYEOF

echo "== serving-stream bench (quick) =="
REPRO_BENCH_QUICK=1 REPRO_BENCH_ARTIFACT_DIR="$BENCH_DIR" \
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q \
    benchmarks/bench_serving_stream.py
python - "$BENCH_DIR/BENCH_serving.json" <<'PYEOF'
import json, math, sys
metrics = json.load(open(sys.argv[1]))["metrics"]
for gauge in ("bench.serving.stream_intervals_per_s",
              "bench.serving.pipeline_intervals_per_s",
              "bench.serving.chunked_intervals_per_s",
              "bench.serving.checkpoint_overhead_pct",
              "bench.serving.monitor_overhead_pct",
              "bench.serving.predict_p50_ms",
              "bench.serving.predict_p99_ms"):
    snap = metrics.get(gauge)
    assert snap and snap["kind"] == "gauge" and math.isfinite(snap["value"]), \
        f"BENCH_serving.json: bad gauge {gauge}: {snap}"
print("BENCH_serving.json schema OK")
PYEOF

echo "== search-loop bench (quick) =="
REPRO_BENCH_QUICK=1 REPRO_BENCH_ARTIFACT_DIR="$BENCH_DIR" \
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q \
    benchmarks/bench_search_loop.py
python - "$BENCH_DIR/BENCH_search.json" <<'PYEOF'
import json, math, sys
metrics = json.load(open(sys.argv[1]))["metrics"]
for gauge in ("bench.search.tell_ms_p50",
              "bench.search.suggest_ms_p50",
              "bench.search.tell_speedup"):
    snap = metrics.get(gauge)
    assert snap and snap["kind"] == "gauge" and math.isfinite(snap["value"]), \
        f"BENCH_search.json: bad gauge {gauge}: {snap}"
print("BENCH_search.json schema OK")
PYEOF

echo "== bench regression check (schema-only under REPRO_BENCH_QUICK) =="
REPRO_BENCH_QUICK=1 python scripts/check_bench.py --candidate-dir "$BENCH_DIR"
