#!/usr/bin/env bash
# Single CI entrypoint: lint + tier-1 test suite.
#
#   scripts/ci.sh            # everything
#   scripts/ci.sh --lint     # lint only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint: no bare print() in src/repro =="
python scripts/check_no_bare_print.py

echo "== lint: import layering (substrate/models/core/apps DAG) =="
python scripts/check_layering.py

if [[ "${1:-}" == "--lint" ]]; then
    exit 0
fi

echo "== tier-1 tests =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q

echo "== fault-injection smoke =="
python scripts/fault_smoke.py

echo "== perf smoke (fast-path parity + quick benchmarks) =="
python scripts/perf_smoke.py

echo "== model-family smoke (non-default family end to end) =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli fit gl-30m \
    --budget tiny --family gru --max-iters 2 --epochs 3

echo "== serving chaos (guarded simulate must survive injected faults) =="
SERVE_DIR="$(mktemp -d)"
trap 'rm -rf "$SERVE_DIR"' EXIT
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli fit fb-10m \
    --budget tiny --max-iters 2 --epochs 3 --save "$SERVE_DIR/model"
REPRO_FAULTS="nan@serve.predict:*" \
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli simulate \
    fb-10m --guarded --model-dir "$SERVE_DIR/model"
REPRO_FAULTS="corrupt@model.load:1" \
    PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro.cli simulate \
    fb-10m --guarded --model-dir "$SERVE_DIR/model"
