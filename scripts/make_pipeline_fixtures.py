#!/usr/bin/env python
"""Record pre-refactor D=1 pipeline behaviour for bitwise equivalence tests.

The multivariate refactor threads a channel dimension D through
scaling, windowing, caching, inference, and serving while promising the
default D=1 path stays *bit-for-bit* unchanged.  This script freezes
the pre-refactor behaviour of the three stages that promise covers:

* ``prepare_data`` — scaled series, split indices, scaler state, and
  the window matrices for two history lengths;
* a seeded ``LSTMRegressor.forward_inference`` pass (the fast path);
* an end-to-end seeded tiny fit's ``predict_series``/``predict_next``
  outputs over the test split.

Float arrays are stored as hex-encoded little-endian float64 bytes so
the regression test (``tests/test_equivalence_multivariate.py``)
compares raw bits, not values-within-tolerance.  Re-running this script
under any refactor that claims D=1 equivalence must reproduce
``tests/data/equivalence_pipeline.json`` byte-for-byte.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import FrameworkSettings, LoadDynamics, search_space_for  # noqa: E402
from repro.core.data import prepare_data  # noqa: E402
from repro.nn.network import LSTMRegressor  # noqa: E402
from repro.obs.logging import get_logger  # noqa: E402

logger = get_logger("scripts.fixtures")

MAX_ITERS = 2
WINDOW_LENGTHS = (3, 8)


def fixture_series() -> np.ndarray:
    """The conftest ``sine_series``: seeded sinusoid + noise, length 240."""
    t = np.arange(240)
    rng = np.random.default_rng(7)
    return 100.0 + 40.0 * np.sin(2 * np.pi * t / 24.0) + rng.normal(0, 2.0, 240)


def hex64(a: np.ndarray) -> str:
    """Hex dump of a float64 array's little-endian bytes (bit-exact)."""
    return np.ascontiguousarray(np.asarray(a, dtype="<f8")).tobytes().hex()


def record_prepare_data(series: np.ndarray) -> dict:
    prepared = prepare_data(series, FrameworkSettings.tiny())
    windows = {}
    for n in WINDOW_LENGTHS:
        X_train, y_train, X_val, y_val = prepared.window_cache.get(n)
        windows[str(n)] = {
            "X_train_shape": list(X_train.shape),
            "X_train": hex64(X_train),
            "y_train": hex64(y_train),
            "X_val_shape": list(X_val.shape),
            "X_val": hex64(X_val),
            "y_val": hex64(y_val),
        }
    return {
        "i_train_end": prepared.i_train_end,
        "i_val_end": prepared.i_val_end,
        "scaler_state": prepared.scaler.state(),
        "scaled": hex64(prepared.scaled),
        "windows": windows,
    }


def record_forward_inference() -> dict:
    model = LSTMRegressor(hidden_size=8, num_layers=2, seed=11)
    rng = np.random.default_rng(23)
    x = rng.uniform(0.0, 1.0, size=(17, 12, 1))
    out = model.predict(x)
    return {
        "hidden_size": 8,
        "num_layers": 2,
        "seed": 11,
        "batch_shape": list(x.shape),
        "input_seed": 23,
        "output": hex64(out),
    }


def record_fit_predictions(series: np.ndarray) -> dict:
    ld = LoadDynamics(
        space=search_space_for("default", "tiny"),
        settings=FrameworkSettings.tiny(max_iters=MAX_ITERS),
    )
    predictor, report = ld.fit(series)
    i_test = int(round(0.8 * series.size))
    preds = predictor.predict_series(series, i_test)
    return {
        "max_iters": MAX_ITERS,
        "best_hyperparameters": report.best_hyperparameters.as_dict(),
        "i_test": i_test,
        "predict_series": hex64(preds),
        "predict_next": hex64(np.array([predictor.predict_next(series[:i_test])])),
    }


def main() -> int:
    data_dir = Path(__file__).resolve().parent.parent / "tests" / "data"
    data_dir.mkdir(parents=True, exist_ok=True)
    series = fixture_series()
    fixture = {
        "prepare_data": record_prepare_data(series),
        "forward_inference": record_forward_inference(),
        "fit": record_fit_predictions(series),
    }
    out = data_dir / "equivalence_pipeline.json"
    out.write_text(json.dumps(fixture, indent=2) + "\n")
    logger.info("pipeline fixture written to %s", out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
